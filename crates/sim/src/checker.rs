//! The checker-style cycle simulator (§7) and evaluation statistics.

use f1_arch::energy::{EnergyModel, PowerBreakdown};
use f1_arch::ArchConfig;
use f1_compiler::expand::Expanded;
use f1_compiler::movement::TrafficBreakdown;
use f1_compiler::{CycleSchedule, MovePlan, StampedSchedule};
use f1_isa::streams::MemDir;
use f1_isa::{ComponentId, FuType};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-window utilization series — the data behind Fig 10.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Timeline {
    /// Window width in cycles.
    pub window: u64,
    /// Active-FU count per window, per class (Ntt, Aut, Mul, Add).
    pub fu_active: [Vec<f64>; 4],
    /// HBM bandwidth utilization per window, percent.
    pub hbm_util: Vec<f64>,
}

/// The simulator's verdict and statistics for one compiled program.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Total cycles.
    pub makespan: u64,
    /// Execution time in seconds.
    pub seconds: f64,
    /// Off-chip traffic split (Fig 9a).
    pub traffic: TrafficBreakdown,
    /// Average-power split (Fig 9b).
    pub power: PowerBreakdown,
    /// Utilization series (Fig 10).
    pub timeline: Timeline,
    /// Average FU utilization (0..1) across the run (§8.2 reports ~30%).
    pub avg_fu_utilization: f64,
    /// Instruction-stream bytes as a fraction of off-chip traffic
    /// (§3: "<0.1%").
    pub instr_fetch_fraction: f64,
}

/// One on-chip residency interval of a value, reconstructed from the
/// emitted streams alone (loads, production cycles, evictions).
#[derive(Debug, Clone, Copy)]
struct Residency {
    /// Cycle the scratchpad bytes are claimed (load start / issue).
    start: u64,
    /// Cycle the data is usable (load completion / producer done).
    avail: u64,
    /// Cycle the bytes are freed (`u64::MAX` = resident to the end).
    end: u64,
    /// Whether this interval began with an off-chip load.
    loaded: bool,
}

/// Per-value residency intervals, derived independently of the scheduler
/// by pairing allocation events (loads, production) with [`f1_isa::streams::EvictEntry`]s
/// in time order.
///
/// # Panics
///
/// Panics when the streams are malformed: two allocations without an
/// intervening eviction, an eviction of a value with no on-chip copy, or
/// a refetch starting before the previous copy's bytes are released.
fn residency_intervals(
    expanded: &Expanded,
    cs: &CycleSchedule,
    arch: &ArchConfig,
) -> HashMap<u32, Vec<Residency>> {
    let dfg = &expanded.dfg;
    // 0 = release, 1 = allocation: at equal cycles the release happens
    // first (byte lineage: an allocation may reuse bytes freed that cycle).
    let mut events: HashMap<u32, Vec<(u64, u8, Residency)>> = HashMap::new();
    for m in &cs.schedule.mem {
        if m.dir == MemDir::Load {
            let avail = m.cycle + arch.mem_channel_cycles(m.bytes) + arch.hbm_latency_cycles;
            events.entry(m.value.0).or_default().push((
                m.cycle,
                1,
                Residency { start: m.cycle, avail, end: u64::MAX, loaded: true },
            ));
        }
    }
    for (instr, (&issue, &done)) in cs.issue_cycle.iter().zip(&cs.done_cycle).enumerate() {
        let out = dfg.instrs()[instr].output;
        events.entry(out.0).or_default().push((
            issue,
            1,
            Residency { start: issue, avail: done, end: u64::MAX, loaded: false },
        ));
    }
    for e in &cs.schedule.evict {
        assert_eq!(
            e.bytes,
            dfg.value(e.value).bytes,
            "evict byte-count mismatch for {:?}",
            e.value
        );
        events.entry(e.value.0).or_default().push((
            e.cycle,
            0,
            Residency { start: 0, avail: 0, end: e.cycle, loaded: false },
        ));
    }
    let mut intervals: HashMap<u32, Vec<Residency>> = HashMap::new();
    for (v, mut evs) in events {
        evs.sort_by_key(|&(cycle, phase, _)| (cycle, phase));
        let mut open: Option<Residency> = None;
        let mut list = Vec::new();
        for (cycle, phase, r) in evs {
            if phase == 1 {
                assert!(
                    open.is_none(),
                    "value {v}: refetch at {cycle} before the previous copy is evicted"
                );
                open = Some(r);
            } else {
                let mut cur = open.take().unwrap_or_else(|| {
                    panic!("value {v}: eviction at {cycle} with no on-chip copy")
                });
                cur.end = cycle;
                list.push(cur);
            }
        }
        if let Some(cur) = open {
            list.push(cur);
        }
        intervals.insert(v, list);
    }
    intervals
}

/// Validates a schedule's emitted streams without computing statistics.
///
/// Independently re-verifies the overlapped schedule the list scheduler
/// emits: per-(cluster, FU, instance) occupancy, per-HBM-channel
/// exclusivity, per-crossbar-lane exclusivity, load/store ordering
/// against value production, streaming dependence timing, and the
/// scheduler's own availability/occupancy counters.
///
/// Capacity faithfulness (§4.3) is checked from the streams alone, with
/// no access to the scheduler's internal state:
///
/// * **Residency**: every consumer must read each operand inside one of
///   the value's on-chip residency intervals — a value whose last copy
///   was evicted may not be read until its refetch *completes*.
/// * **Capacity**: the byte-weighted overlap of all residency intervals
///   must stay within the scratchpad at every cycle.
/// * **Ordering**: a refetch may not start before the previous copy's
///   release; a spilled intermediate's refetch additionally requires its
///   writeback to have completed.
///
/// This is the right entry for re-verifying a schedule that did *not*
/// come out of an in-process compile — e.g. one deserialized from the
/// schedule cache — since it needs no [`MovePlan`]. Returns the verified
/// makespan.
///
/// # Panics
///
/// Panics (like the paper's checker) on any missed dependence, resource
/// double-booking, capacity overflow, or accounting mismatch.
pub fn check_streams(expanded: &Expanded, cs: &CycleSchedule, arch: &ArchConfig) -> u64 {
    let dfg = &expanded.dfg;
    let n = dfg.n;
    check_structural(cs, arch, n);

    // --- Residency intervals (from the streams alone) and the capacity
    // invariant: the byte-weighted overlap of all on-chip intervals must
    // never exceed the scratchpad.
    let intervals = residency_intervals(expanded, cs, arch);
    {
        let cap = arch.scratchpad_bytes();
        // phase 0 = release, 1 = allocation: bytes freed at cycle t may be
        // reused by an allocation starting at t.
        let mut deltas: Vec<(u64, u8, i64)> = Vec::new();
        for (&v, list) in &intervals {
            let bytes = dfg.value(f1_isa::dfg::ValueId(v)).bytes as i64;
            for r in list {
                deltas.push((r.start, 1, bytes));
                if r.end != u64::MAX {
                    deltas.push((r.end, 0, -bytes));
                }
            }
        }
        deltas.sort_unstable_by_key(|&(cycle, phase, _)| (cycle, phase));
        let mut occupied = 0i64;
        for (cycle, _, d) in deltas {
            occupied += d;
            assert!(
                occupied <= cap as i64,
                "resident set ({occupied} bytes) exceeds scratchpad capacity ({cap}) at cycle {cycle}"
            );
        }
    }
    let covering = |v: u32, t: u64| -> Option<Residency> {
        intervals.get(&v).and_then(|list| list.iter().find(|r| r.avail <= t && t <= r.end)).copied()
    };

    // --- Dependences under rate-matched streaming semantics. A value is
    // available `latency` (plus the slow-producer catch-up) after its
    // producer issues, or once a load of it completes; either way the
    // read must fall inside an on-chip residency interval — a value whose
    // last copy was evicted may not be read until its refetch completes.
    // Remote consumption additionally needs a crossbar transfer, within
    // the same interval, that lands before the consumer issues.
    let weight = |fu: FuType| f1_compiler::cycle::stream_weight(arch, fu, n);
    // Producer cluster per value (None = lives in a scratchpad bank).
    let mut cluster_of: HashMap<u32, usize> = HashMap::new();
    for (c, stream) in cs.schedule.compute.iter().enumerate() {
        for e in stream {
            cluster_of.insert(dfg.instr(e.instr).output.0, c);
        }
    }
    // Crossbar deliveries per (value, destination): (start, arrival).
    let mut arrivals: HashMap<(u32, ComponentId), Vec<(u64, u64)>> = HashMap::new();
    for e in &cs.schedule.net {
        assert!(
            covering(e.value.0, e.cycle).is_some(),
            "net transfer of {:?} at {} outside any on-chip residency interval",
            e.value,
            e.cycle
        );
        let t = e.cycle + f1_compiler::cycle::XBAR_HOP_CYCLES;
        arrivals.entry((e.value.0, e.to)).or_default().push((e.cycle, t));
    }
    for (c, stream) in cs.schedule.compute.iter().enumerate() {
        for e in stream {
            let instr = dfg.instr(e.instr);
            assert_eq!(
                cs.issue_cycle[e.instr.0 as usize], e.cycle,
                "stream/issue mismatch for {:?}",
                e.instr
            );
            assert_eq!(
                cs.done_cycle[e.instr.0 as usize],
                e.cycle + weight(instr.op.fu_type()),
                "availability mismatch for {:?}",
                e.instr
            );
            for &v in &instr.inputs {
                let r = covering(v.0, e.cycle).unwrap_or_else(|| {
                    panic!(
                        "instr {:?} at {} reads {v:?} while it is evicted \
                         (no completed on-chip copy: refetch not done or value never loaded)",
                        e.instr, e.cycle
                    )
                });
                let local = !r.loaded && cluster_of.get(&v.0) == Some(&c);
                if !local {
                    // Remote (bank-resident or other-cluster) operands MUST
                    // arrive over the crossbar within this same residency
                    // interval — a missing transfer is a scheduler bug, and
                    // a transfer from before the eviction carries stale
                    // bytes, not a free pass.
                    let ok = arrivals
                        .get(&(v.0, ComponentId::Cluster(c)))
                        .map(|xs| {
                            xs.iter()
                                .any(|&(s, arrive)| arrive <= e.cycle && s >= r.start && s <= r.end)
                        })
                        .unwrap_or(false);
                    assert!(
                        ok,
                        "instr {:?} on cluster {c} consumes remote {v:?} with no \
                         crossbar transfer inside the value's residency interval",
                        e.instr
                    );
                }
            }
        }
    }

    // --- Memory ordering against production and spills: a store must not
    // start before its value exists, and a spilled intermediate's refetch
    // must not start before its writeback completes.
    let mut store_done: HashMap<u32, Vec<u64>> = HashMap::new();
    for m in &cs.schedule.mem {
        if m.dir == MemDir::Store {
            store_done
                .entry(m.value.0)
                .or_default()
                .push(m.cycle + arch.mem_channel_cycles(m.bytes));
        }
    }
    for m in &cs.schedule.mem {
        if m.dir == MemDir::Store {
            // A store reads the scratchpad: the value must be resident
            // (within an on-chip interval) when the transfer starts.
            assert!(
                covering(m.value.0, m.cycle).is_some(),
                "store of {:?} at {} reads a value with no on-chip copy",
                m.value,
                m.cycle
            );
        }
        if let Some(p) = dfg.producer(m.value) {
            assert!(
                m.cycle >= cs.done_cycle[p.0 as usize],
                "{:?} transfer of {:?} at {} before production",
                m.dir,
                m.value,
                m.cycle
            );
            if m.dir == MemDir::Load {
                // An intermediate can only be in HBM because it was spilled.
                let ok = store_done
                    .get(&m.value.0)
                    .map(|ds| ds.iter().any(|&d| d <= m.cycle))
                    .unwrap_or(false);
                assert!(
                    ok,
                    "refetch of spilled {:?} at {} before any writeback completes",
                    m.value, m.cycle
                );
            }
        }
    }

    cs.makespan.max(1)
}

/// Structural-resource validation from the streams alone — the subset of
/// [`check_streams`] that needs no DFG: per-(cluster, FU, instance)
/// occupancy spacing, per-HBM-channel exclusivity, per-crossbar-lane
/// exclusivity, stream monotonicity, and the occupancy-counter
/// cross-checks. Shared by [`check_streams`] and [`check_stamped`]
/// (which runs it over materialized streams whose full DFG was never
/// built).
fn check_structural(cs: &CycleSchedule, arch: &ArchConfig, n: usize) {
    cs.schedule.validate_monotone();

    // --- Structural hazards: per (cluster, fu, slot), issues must be at
    // least `occupancy` apart (fully pipelined units, one vector each).
    for (c, stream) in cs.schedule.compute.iter().enumerate() {
        let mut by_slot: HashMap<(FuType, usize), Vec<u64>> = HashMap::new();
        for e in stream {
            assert!(
                e.fu_index < arch.fus_per_cluster(e.fu),
                "cluster {c} has no {:?} instance {}",
                e.fu,
                e.fu_index
            );
            by_slot.entry((e.fu, e.fu_index)).or_default().push(e.cycle);
        }
        for ((fu, slot), mut cycles) in by_slot {
            cycles.sort_unstable();
            let occ = arch.occupancy(fu, n);
            for w in cycles.windows(2) {
                assert!(
                    w[1] >= w[0] + occ,
                    "structural hazard on cluster {c} {fu:?}[{slot}]: issues at {} and {}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    // --- HBM channels: each channel is exclusive; transfers on it must
    // be spaced by their per-channel streaming time.
    {
        let mut by_channel: HashMap<usize, Vec<(u64, u64)>> = HashMap::new();
        for m in &cs.schedule.mem {
            assert!(m.channel < arch.hbm_channels, "unknown HBM channel {}", m.channel);
            by_channel.entry(m.channel).or_default().push((m.cycle, m.bytes));
        }
        for (ch, mut xs) in by_channel {
            xs.sort_unstable();
            for w in xs.windows(2) {
                assert!(
                    w[1].0 >= w[0].0 + arch.mem_channel_cycles(w[0].1),
                    "HBM channel {ch} double-booked: transfers at {} and {}",
                    w[0].0,
                    w[1].0
                );
            }
        }
    }

    // --- Crossbar ports: per ((from, to), lane), transfers must be
    // spaced by their streaming time.
    {
        let mut by_lane: HashMap<(ComponentId, ComponentId, usize), Vec<(u64, u64)>> =
            HashMap::new();
        for e in &cs.schedule.net {
            assert!(e.port < arch.xbar_ports, "unknown crossbar lane {}", e.port);
            by_lane.entry((e.from, e.to, e.port)).or_default().push((e.cycle, e.bytes));
        }
        for (lane, mut xs) in by_lane {
            xs.sort_unstable();
            for w in xs.windows(2) {
                assert!(
                    w[1].0 >= w[0].0 + arch.net_cycles(w[0].1),
                    "crossbar lane {lane:?} double-booked: transfers at {} and {}",
                    w[0].0,
                    w[1].0
                );
            }
        }
    }

    // --- Counter cross-checks: the scheduler's occupancy bookkeeping
    // must match the streams it emitted.
    {
        let chan_busy: u64 = cs.schedule.mem.iter().map(|m| arch.mem_channel_cycles(m.bytes)).sum();
        assert_eq!(
            cs.counters.hbm_channel_busy_cycles, chan_busy,
            "HBM channel busy-cycle counter mismatch"
        );
        let xbar_busy: u64 = cs.schedule.net.iter().map(|e| arch.net_cycles(e.bytes)).sum();
        assert_eq!(cs.counters.xbar_busy_cycles, xbar_busy, "crossbar busy-cycle counter mismatch");
        let hbm_bytes: u64 = cs.schedule.mem.iter().map(|m| m.bytes).sum();
        assert_eq!(cs.counters.hbm_bytes, hbm_bytes, "HBM byte counter mismatch");
    }
}

/// One stamped stream's three-part shape check against the template:
/// prefix verbatim from the base truncation, `k` copies of the 2-trip
/// block `K` each independently relocated from `K` itself, and the base's
/// drain relocated by `2k` trips. `seed` drives which stamped copies get
/// byte-compared (all of them when `k` is small).
fn check_stamped_stream<T: PartialEq + Clone + std::fmt::Debug>(
    prev: &[T],
    base: &[T],
    full: &[T],
    k: u64,
    apply: &dyn Fn(&T, u64) -> T,
    seed: &mut u64,
    what: &str,
) {
    assert!(base.len() >= prev.len(), "{what}: stream shrank between truncations");
    let l = prev.iter().zip(base).take_while(|(a, b)| a == b).count();
    let block2 = base.len() - prev.len();
    assert!(l + block2 <= base.len(), "{what}: divergence exceeds the 2-trip block");
    assert_eq!(
        full.len(),
        base.len() + k as usize * block2,
        "{what}: stamped stream length off the affine model"
    );
    assert!(full[..l] == base[..l], "{what}: stamped prefix diverges from the base truncation");
    let tail = l + k as usize * block2;
    for (i, e) in base[l..].iter().enumerate() {
        assert!(
            full[tail + i] == apply(e, 2 * k),
            "{what}: relocated drain entry {i} mismatches ({:?} vs {:?})",
            full[tail + i],
            apply(e, 2 * k)
        );
    }
    // Spot-check stamped copies of K against an *independent* relocation
    // of K (exhaustively when k is small, 8 random copies otherwise).
    let spots: Vec<u64> = if k <= 8 {
        (0..k).collect()
    } else {
        (0..8)
            .map(|_| {
                *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (*seed >> 33) % k
            })
            .collect()
    };
    for j in spots {
        for (i, e) in base[l..l + block2].iter().enumerate() {
            assert!(
                full[l + j as usize * block2 + i] == apply(e, 2 * j),
                "{what}: stamped block {j} entry {i} mismatches its relocation"
            );
        }
    }
}

/// Validates a *stamped* schedule (the sublinear rolled-compile path)
/// without ever building the full program's DFG.
///
/// The verification argument has three legs:
///
/// 1. **Base soundness** — the base truncation's compile is re-verified
///    end to end with [`check_streams`] (dependences, residency,
///    capacity, the works) against its own pass-1 DFG.
/// 2. **Relocation invariants** — the per-trip shift keeps every
///    relocated memory access in its scratchpad bank
///    (`2·dv ≡ 0 (mod banks)`, the loads/stores address `bank = value
///    mod banks`), so the base's capacity and residency proofs transfer
///    to every stamped copy unchanged; the period is positive, so
///    relocated cycles stay ordered.
/// 3. **Materialization faithfulness** — the full streams are checked
///    structurally from scratch ([`check_structural`]: FU occupancy,
///    channel/lane exclusivity, monotonicity, counters), the issue/done
///    tables are re-derived entry by entry, and every stream is shape-
///    checked against the template: verbatim prefix, stamped copies of
///    the 2-trip block byte-compared against an independent relocation,
///    and the drain relocated by exactly `2k` trips.
///
/// Returns the verified makespan of the materialized schedule.
///
/// # Panics
///
/// Panics (like the paper's checker) on any violated invariant.
pub fn check_stamped(st: &StampedSchedule, full: &CycleSchedule, arch: &ArchConfig) -> u64 {
    // Leg 1: the base truncation must pass the full checker.
    check_streams(&st.base_expanded, &st.base, arch);

    // Leg 2: relocation invariants.
    let r = st.relocation();
    let k = st.info.k;
    assert!(r.period > 0, "stamped schedule with a zero per-trip period");
    assert!(r.dv > 0 && r.di > 0, "degenerate per-trip id growth");
    assert_eq!(
        2 * r.dv as usize % arch.scratchpad_banks,
        0,
        "per-block value shift 2dv = {} would re-home scratchpad banks ({} banks)",
        2 * r.dv,
        arch.scratchpad_banks
    );
    assert_eq!(
        full.makespan,
        st.base.makespan + 2 * k * r.period,
        "stamped makespan off the affine model"
    );

    // Leg 3a: structural validation of the materialized streams.
    let n = st.base_expanded.n;
    check_structural(full, arch, n);

    // Leg 3b: issue/done tables must match the streams entry by entry.
    let expected_instrs = st.base_expanded.dfg.instrs().len() + 2 * k as usize * r.di as usize;
    assert_eq!(full.issue_cycle.len(), expected_instrs, "issue table length off the affine model");
    assert_eq!(full.done_cycle.len(), expected_instrs, "done table length off the affine model");
    for stream in &full.schedule.compute {
        for e in stream {
            let i = e.instr.0 as usize;
            assert_eq!(full.issue_cycle[i], e.cycle, "stream/issue mismatch for {:?}", e.instr);
            assert_eq!(
                full.done_cycle[i],
                e.cycle + f1_compiler::cycle::stream_weight(arch, e.fu, n),
                "availability mismatch for {:?}",
                e.instr
            );
        }
    }

    // Leg 3c: per-stream shape checks against the template.
    let mut seed = full.makespan | 1;
    let base = &st.base.schedule;
    assert_eq!(
        st.prev.compute.len(),
        base.compute.len(),
        "compute stream count changed between truncations"
    );
    for (c, (p, b)) in st.prev.compute.iter().zip(&base.compute).enumerate() {
        check_stamped_stream(
            p,
            b,
            &full.schedule.compute[c],
            k,
            &|e, m| {
                let mut e = e.clone();
                e.cycle = r.cycle(e.cycle, m);
                e.instr.0 = r.instr(e.instr.0, m);
                e
            },
            &mut seed,
            &format!("compute[{c}]"),
        );
    }
    let shift_val = |e: &f1_isa::streams::MemEntry, m: u64| {
        let mut e = e.clone();
        e.cycle = r.cycle(e.cycle, m);
        e.value.0 = r.value(e.value.0, m);
        e
    };
    check_stamped_stream(&st.prev.mem, &base.mem, &full.schedule.mem, k, &shift_val, &mut seed, "mem");
    check_stamped_stream(
        &st.prev.net,
        &base.net,
        &full.schedule.net,
        k,
        &|e, m| {
            let mut e = e.clone();
            e.cycle = r.cycle(e.cycle, m);
            e.value.0 = r.value(e.value.0, m);
            e
        },
        &mut seed,
        "net",
    );
    check_stamped_stream(
        &st.prev.evict,
        &base.evict,
        &full.schedule.evict,
        k,
        &|e, m| {
            let mut e = *e;
            e.cycle = r.cycle(e.cycle, m);
            e.value.0 = r.value(e.value.0, m);
            e
        },
        &mut seed,
        "evict",
    );

    // Counters must sit on the affine model too.
    assert_eq!(
        full.counters,
        st.base.counters.plus_scaled(&st.counters_per_trip, 2 * k),
        "stamped energy counters off the affine model"
    );

    full.makespan.max(1)
}

/// Validates a schedule ([`check_streams`]) and derives its statistics.
///
/// # Panics
///
/// Panics (like the paper's checker) on any missed dependence, resource
/// double-booking, capacity overflow, or accounting mismatch.
pub fn check_schedule(
    expanded: &Expanded,
    plan: &MovePlan,
    cs: &CycleSchedule,
    arch: &ArchConfig,
) -> SimReport {
    let makespan = check_streams(expanded, cs, arch);
    let dfg = &expanded.dfg;
    let n = dfg.n;

    // --- Statistics.
    let window = (makespan / 160).max(1);
    let buckets = makespan.div_ceil(window) as usize;
    let mut timeline = Timeline {
        window,
        fu_active: [vec![0.0; buckets], vec![0.0; buckets], vec![0.0; buckets], vec![0.0; buckets]],
        hbm_util: vec![0.0; buckets],
    };
    let fu_idx = |fu: FuType| match fu {
        FuType::Ntt => 0usize,
        FuType::Aut => 1,
        FuType::Mul => 2,
        FuType::Add => 3,
    };
    let add_interval = |series: &mut Vec<f64>, start: u64, end: u64| {
        let mut c = start;
        while c < end {
            let b = (c / window) as usize;
            let bucket_end = (c / window + 1) * window;
            let step = bucket_end.min(end) - c;
            if b < series.len() {
                series[b] += step as f64;
            }
            c += step;
        }
    };
    let mut total_busy = 0u64;
    for stream in &cs.schedule.compute {
        for e in stream {
            let occ = arch.occupancy(e.fu, n);
            total_busy += occ;
            add_interval(&mut timeline.fu_active[fu_idx(e.fu)], e.cycle, e.cycle + occ);
        }
    }
    for m in &cs.schedule.mem {
        let mc = arch.mem_channel_cycles(m.bytes);
        add_interval(&mut timeline.hbm_util, m.cycle, m.cycle + mc);
    }
    for series in timeline.fu_active.iter_mut() {
        for v in series.iter_mut() {
            *v /= window as f64; // busy-cycles -> average active units
        }
    }
    // Channel busy-cycles over window × channels = bandwidth utilization.
    for v in timeline.hbm_util.iter_mut() {
        *v = *v / (window * arch.hbm_channels.max(1) as u64) as f64 * 100.0;
    }

    let total_fus: usize = (0..arch.clusters)
        .map(|_| FuType::ALL.iter().map(|&f| arch.fus_per_cluster(f)).sum::<usize>())
        .sum();
    let avg_fu_utilization = total_busy as f64 / (total_fus as u64 * makespan) as f64;

    let model = EnergyModel::default();
    let power = model.power_breakdown(&cs.counters, makespan, arch);
    let instr_fetch_fraction =
        cs.schedule.encoded_bytes() as f64 / cs.schedule.offchip_bytes().max(1) as f64;

    SimReport {
        makespan,
        seconds: cs.seconds(arch),
        traffic: plan.traffic,
        power,
        timeline,
        avg_fu_utilization,
        instr_fetch_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_compiler::dsl::Program;

    fn run(p: &Program) -> (Expanded, MovePlan, CycleSchedule, ArchConfig) {
        let arch = ArchConfig::f1_default();
        let (ex, plan, cs) = f1_compiler::compile(p, &arch);
        (ex, plan, cs, arch)
    }

    #[test]
    fn matvec_schedule_validates_and_reports() {
        let p = Program::listing2_matvec(1 << 12, 8, 4);
        let (ex, plan, cs, arch) = run(&p);
        let report = check_schedule(&ex, &plan, &cs, &arch);
        assert!(report.makespan > 0);
        assert!(report.seconds > 0.0);
        assert!(report.traffic.total() > 0);
        assert!(report.power.total_w() > 0.0);
        // At this test's N = 4096 the residue vectors are 16 KB; the
        // paper's 64 KB vectors (N = 16K) push the ratio ~4x lower, under
        // its 0.1% claim.
        assert!(
            report.instr_fetch_fraction < 0.02,
            "instruction fetches {} must be a tiny fraction of traffic",
            report.instr_fetch_fraction
        );
        assert!((0.0..=1.0).contains(&report.avg_fu_utilization));
    }

    #[test]
    fn timeline_conserves_busy_cycles() {
        let p = Program::listing2_matvec(1 << 12, 4, 2);
        let (ex, plan, cs, arch) = run(&p);
        let report = check_schedule(&ex, &plan, &cs, &arch);
        let t = &report.timeline;
        // Sum of (avg active × window) over buckets equals total busy
        // cycles per class.
        let ntt_busy: f64 = t.fu_active[0].iter().map(|v| v * t.window as f64).sum();
        let expected = cs.counters.fu_busy_cycles[0] as f64;
        assert!(
            (ntt_busy - expected).abs() / expected.max(1.0) < 0.01,
            "timeline NTT busy {ntt_busy} vs counters {expected}"
        );
    }

    #[test]
    fn power_is_dominated_by_data_movement() {
        // §8.2: computation is 20-30% of power for realistic programs.
        let p = Program::listing2_matvec(1 << 13, 8, 4);
        let (ex, plan, cs, arch) = run(&p);
        let report = check_schedule(&ex, &plan, &cs, &arch);
        assert!(
            report.power.data_movement_fraction() > 0.4,
            "data movement fraction {}",
            report.power.data_movement_fraction()
        );
    }

    /// A hand-built four-instruction schedule exercising the full
    /// capacity machinery: load → read → evict → refetch → read → store.
    /// `pad_values` sizes the scratchpad in 4 KB value slots; `i1_issue`
    /// places the post-refetch consumer.
    fn handmade(pad_values: u64, i1_issue: u64) -> (Expanded, MovePlan, CycleSchedule, ArchConfig) {
        use f1_isa::dfg::{Dfg, ValueId, ValueKind, VectorOp};
        use f1_isa::streams::{ComputeEntry, EvictEntry, MemEntry, NetEntry, StaticSchedule};
        use f1_isa::ComponentId;

        let n = 1024usize; // 4 KB values
        let mut dfg = Dfg::new(n);
        let a = dfg.add_value(ValueKind::Input, Some("a".into()));
        let v1 = dfg.add_instr(VectorOp::Ntt, vec![a], 0); // i0: reads a pre-evict
        let v2 = dfg.add_instr(VectorOp::Ntt, vec![a], 1); // i1: reads a post-refetch
        let v3 = dfg.add_instr(VectorOp::Add, vec![v1, v2], 2); // i2
        dfg.mark_output(v3);

        let mut arch = ArchConfig::f1_default();
        arch.scratchpad_banks = 1;
        arch.bank_bytes = pad_values * 4096;

        let dur = arch.mem_channel_cycles(4096); // 64
        let lat = arch.hbm_latency_cycles; // 250
        let avail1 = dur + lat; // first load of `a` completes: 314
        let refetch_start = 448;
        let avail2 = refetch_start + dur + lat; // 762

        let mut s = StaticSchedule::new(arch.clusters);
        s.mem.push(MemEntry {
            cycle: 0,
            dir: MemDir::Load,
            value: a,
            bytes: 4096,
            bank: 0,
            channel: 0,
        });
        s.mem.push(MemEntry {
            cycle: refetch_start,
            dir: MemDir::Load,
            value: a,
            bytes: 4096,
            bank: 0,
            channel: 0,
        });
        s.mem.push(MemEntry {
            cycle: 950,
            dir: MemDir::Store,
            value: v3,
            bytes: 4096,
            bank: 0,
            channel: 1,
        });
        s.evict.push(EvictEntry { cycle: 400, value: a, bytes: 4096 });
        let hop = f1_compiler::cycle::XBAR_HOP_CYCLES;
        s.net.push(NetEntry {
            cycle: avail1,
            value: a,
            from: ComponentId::Bank(0),
            to: ComponentId::Cluster(0),
            bytes: 4096,
            port: 0,
        });
        s.net.push(NetEntry {
            cycle: avail2,
            value: a,
            from: ComponentId::Bank(0),
            to: ComponentId::Cluster(0),
            bytes: 4096,
            port: 0,
        });
        let _ = hop;
        let w_ntt = f1_compiler::cycle::stream_weight(&arch, FuType::Ntt, n);
        let w_add = f1_compiler::cycle::stream_weight(&arch, FuType::Add, n);
        let issue = [320u64, i1_issue, 900];
        let done = [issue[0] + w_ntt, issue[1] + w_ntt, issue[2] + w_add];
        for (i, fu) in [(0usize, FuType::Ntt), (1, FuType::Ntt), (2, FuType::Add)] {
            s.compute[0].push(ComputeEntry {
                cycle: issue[i],
                instr: f1_isa::dfg::InstrId(i as u32),
                fu,
                fu_index: 0,
            });
        }
        s.compute[0].sort_by_key(|e| e.cycle);
        s.makespan = 1100;

        let counters = f1_arch::energy::EnergyCounters {
            hbm_bytes: 3 * 4096,
            hbm_channel_busy_cycles: 3 * dur,
            xbar_busy_cycles: 2 * arch.net_cycles(4096),
            ..Default::default()
        };

        let cs = CycleSchedule {
            schedule: s,
            issue_cycle: issue.to_vec(),
            done_cycle: done.to_vec(),
            makespan: 1100,
            counters,
        };
        let plan = MovePlan {
            order: (0..3).map(f1_isa::dfg::InstrId).collect(),
            events: Vec::new(),
            traffic: TrafficBreakdown::default(),
            approx_cycles: 1100,
        };
        let _ = ValueId(0);
        let ex = Expanded {
            dfg,
            hint_values: std::collections::BTreeMap::new(),
            used_ghs: false,
            n,
            output_values: vec![vec![v3]],
            hom_order: vec![],
        };
        (ex, plan, cs, arch)
    }

    #[test]
    fn handmade_capacity_schedule_validates() {
        // Baseline sanity: the hand-built evict/refetch schedule is legal
        // at a 4-value pad with the consumer after refetch completion.
        let (ex, plan, cs, arch) = handmade(4, 775);
        let report = check_schedule(&ex, &plan, &cs, &arch);
        assert!(report.makespan > 0);
    }

    #[test]
    #[should_panic(expected = "while it is evicted")]
    fn checker_rejects_read_before_refetch_completes() {
        // i1 issues at 700: after `a`'s eviction (400) but before its
        // refetch completes (762). The value has no on-chip copy there.
        let (ex, plan, cs, arch) = handmade(4, 700);
        check_schedule(&ex, &plan, &cs, &arch);
    }

    #[test]
    #[should_panic(expected = "exceeds scratchpad capacity")]
    fn checker_rejects_resident_set_over_capacity() {
        // Same legal-timing schedule, but a 3-value pad: at cycle 900 the
        // resident set is {a, v1, v2, v3} = 4 values.
        let (ex, plan, cs, arch) = handmade(3, 775);
        check_schedule(&ex, &plan, &cs, &arch);
    }

    #[test]
    #[should_panic(expected = "before the previous copy is evicted")]
    fn checker_rejects_overlapping_residency() {
        // Drop the evict entry: two loads of `a` with no release between
        // them is a malformed residency stream.
        let (ex, plan, mut cs, arch) = handmade(4, 775);
        cs.schedule.evict.clear();
        check_schedule(&ex, &plan, &cs, &arch);
    }

    #[test]
    fn compiled_tiny_pad_schedule_validates() {
        // The real pipeline at a thrashing 2 MB scratchpad must satisfy
        // the strengthened checker end to end.
        let p = Program::listing2_matvec(1 << 12, 8, 4);
        let arch = ArchConfig::f1_default().with_scratchpad_mb(2);
        let (ex, plan, cs) = f1_compiler::compile(&p, &arch);
        assert!(plan.traffic.non_compulsory() > 0, "2 MB pad must thrash");
        let report = check_schedule(&ex, &plan, &cs, &arch);
        assert!(report.traffic.total() > report.traffic.compulsory());
    }

    #[test]
    #[should_panic(expected = "structural hazard")]
    fn checker_catches_fu_hazards() {
        let p = Program::listing2_matvec(1 << 12, 4, 2);
        let (ex, plan, mut cs, arch) = run(&p);
        // Corrupt: delay the first of two same-slot NTT issues onto the
        // second's cycle (delaying keeps dependences satisfied, so the
        // checker must trip on the structural hazard specifically).
        let mut found = None;
        'outer: for stream in cs.schedule.compute.iter_mut() {
            let mut first: Option<usize> = None;
            for idx in 0..stream.len() {
                if stream[idx].fu == FuType::Ntt {
                    if let Some(fidx) = first {
                        if stream[fidx].fu_index == stream[idx].fu_index {
                            stream[fidx].cycle = stream[idx].cycle;
                            found = Some(());
                            break 'outer;
                        }
                    } else {
                        first = Some(idx);
                    }
                }
            }
        }
        assert!(found.is_some(), "test needs two NTT entries on one slot");
        // Re-sort so monotonicity holds but the hazard remains.
        for stream in cs.schedule.compute.iter_mut() {
            stream.sort_by_key(|e| e.cycle);
        }
        check_schedule(&ex, &plan, &cs, &arch);
    }

    /// A rolled steady-state chain that the stamping fast path accepts.
    fn stamped_pair(trips: u32) -> (StampedSchedule, CycleSchedule, ArchConfig) {
        use f1_compiler::{compile_rolled, FheProgram, RolledOutcome, Scheme};
        let arch = ArchConfig::f1_default();
        let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
        let acc = p.input(6);
        let t = p.begin_repeat();
        let m = p.square(acc);
        let r = p.aut(m, 9);
        let acc2 = p.add(r, m);
        p.end_repeat(t, trips, vec![(acc, acc2)], vec![]);
        p.output(acc2);
        let rolled = compile_rolled(&p, &arch);
        match rolled.outcome {
            RolledOutcome::Stamped(st) => (*st, rolled.schedule, arch),
            RolledOutcome::Flat { reason } => panic!("fast path must engage: {reason}"),
        }
    }

    #[test]
    fn stamped_schedule_validates() {
        let (st, full, arch) = stamped_pair(40);
        let makespan = check_stamped(&st, &full, &arch);
        assert_eq!(makespan, full.makespan);
    }

    #[test]
    #[should_panic(expected = "off the affine model")]
    fn stamped_checker_rejects_wrong_makespan() {
        let (st, mut full, arch) = stamped_pair(40);
        full.makespan += 1;
        full.schedule.makespan += 1;
        check_stamped(&st, &full, &arch);
    }

    #[test]
    #[should_panic(expected = "mismatches its relocation")]
    fn stamped_checker_rejects_corrupt_block() {
        // 30 trips → k = 8 stamped blocks: the block spot-check is
        // exhaustive, so corrupting any stamped entry trips it.
        let (st, mut full, arch) = stamped_pair(30);
        // First entry of stamped block 0 in the evict stream (right
        // after the common prefix); evict `bytes` is only compared by
        // the relocation check, so nothing else trips first.
        let l = st
            .prev
            .evict
            .iter()
            .zip(&st.base.schedule.evict)
            .take_while(|(a, b)| a == b)
            .count();
        assert!(
            st.base.schedule.evict.len() > st.prev.evict.len(),
            "needs per-trip evictions to stamp"
        );
        full.schedule.evict[l].bytes ^= 1;
        check_stamped(&st, &full, &arch);
    }

    #[test]
    #[should_panic(expected = "relocated drain entry")]
    fn stamped_checker_rejects_corrupt_drain() {
        let (st, mut full, arch) = stamped_pair(40);
        // The final mem entry (the output store) is always in the
        // relocated drain, which is compared entry by entry.
        let last = full.schedule.mem.len() - 1;
        full.schedule.mem[last].bank ^= 1;
        check_stamped(&st, &full, &arch);
    }
}
