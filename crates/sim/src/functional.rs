//! The functional simulator (§8.5) — and the timed CPU software baseline.
//!
//! The paper's functional simulator executes FHE computations in software
//! (on top of a number-theory library) to verify input-output correctness
//! and generate dataflow graphs; the algorithms match common software
//! implementations rather than F1's hardware dataflow. Here that role is
//! played by `f1-fhe`: this module interprets DSL programs against the
//! real BGV implementation, both to validate results end-to-end and to
//! *time* the software execution — the CPU baseline of Table 3 (see
//! DESIGN.md §2.2 for the substitution from the paper's Xeon baseline).

use f1_compiler::dsl::{CtId, HomOp, Program};
use f1_compiler::ir::Lowered;
use f1_fhe::bgv::{Ciphertext, KeySet, Plaintext};
use f1_fhe::params::BgvParams;
use rand::Rng;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Binds a lowering's compile-time constants ([`Lowered::constants`],
/// the plaintexts the IR's constant folder produced) as plaintext
/// operands for [`BgvExecutor::run`]. Folding is overflow-checked exact
/// integer arithmetic, so reducing the folded coefficients mod `t` here
/// yields the same residues as evaluating the original constant ops.
pub fn bind_constants(lowered: &Lowered, params: &BgvParams) -> HashMap<CtId, Plaintext> {
    lowered
        .constants
        .iter()
        .map(|(id, coeffs)| (*id, Plaintext::from_coeffs(params, coeffs)))
        .collect()
}

/// Executes DSL programs against the real BGV scheme.
pub struct BgvExecutor {
    params: BgvParams,
    keys: KeySet,
}

/// The result of a functional run.
pub struct FunctionalRun {
    /// Decrypted outputs, in program-output order.
    pub outputs: Vec<Plaintext>,
    /// Measured log2 noise magnitude of each output ciphertext at
    /// decryption time (same order as `outputs`) — the ground truth the
    /// compiler's static noise bounds are validated against.
    pub output_noise: Vec<f64>,
    /// Wall-clock time of the homomorphic evaluation only (encryption and
    /// decryption excluded, as in the paper's baselines).
    pub eval_time: Duration,
    /// Number of homomorphic operations executed.
    pub hom_ops: usize,
}

impl BgvExecutor {
    /// Creates an executor, generating keys and every rotation hint the
    /// program needs.
    pub fn new(params: BgvParams, program: &Program, rng: &mut impl Rng) -> Self {
        let mut keys = KeySet::generate(&params, rng);
        let mut seen = std::collections::HashSet::new();
        for op in program.ops() {
            if let HomOp::Aut { k, .. } = op {
                if seen.insert(*k) {
                    keys.add_rotation_hint(*k, rng);
                }
            }
        }
        Self { params, keys }
    }

    /// The key set (e.g. for encrypting extra inputs in tests).
    pub fn keys(&self) -> &KeySet {
        &self.keys
    }

    /// Runs a program. `inputs` supplies plaintexts for `Input` ops (by
    /// op id); missing entries default to zero. `plains` supplies
    /// unencrypted operands for `PlainInput` ops.
    pub fn run(
        &self,
        program: &Program,
        inputs: &HashMap<CtId, Plaintext>,
        plains: &HashMap<CtId, Plaintext>,
        rng: &mut impl Rng,
    ) -> FunctionalRun {
        // Encrypt inputs (client side; not timed).
        let mut cts: HashMap<CtId, Ciphertext> = HashMap::new();
        let mut pts: HashMap<CtId, Plaintext> = HashMap::new();
        let zero = Plaintext::from_coeffs(&self.params, &[]);
        for (idx, op) in program.ops().iter().enumerate() {
            let id = CtId(idx as u32);
            match op {
                HomOp::Input { level } => {
                    let m = inputs.get(&id).unwrap_or(&zero);
                    cts.insert(id, self.keys.encrypt_at_level(m, *level, rng));
                }
                HomOp::PlainInput { .. } => {
                    pts.insert(id, plains.get(&id).unwrap_or(&zero).clone());
                }
                _ => {}
            }
        }
        // Homomorphic evaluation (timed — the server-side work F1
        // accelerates).
        let start = Instant::now();
        let mut hom_ops = 0usize;
        for (idx, op) in program.ops().iter().enumerate() {
            let id = CtId(idx as u32);
            match op {
                HomOp::Input { .. } | HomOp::PlainInput { .. } => {}
                HomOp::Add { a, b } => {
                    hom_ops += 1;
                    let r = cts[a].add(&cts[b]);
                    cts.insert(id, r);
                }
                HomOp::AddPlain { a, p } => {
                    hom_ops += 1;
                    let r = cts[a].add_plain(&pts[p], &self.params);
                    cts.insert(id, r);
                }
                HomOp::Mul { a, b } => {
                    hom_ops += 1;
                    let r = cts[a].mul(&cts[b], self.keys.relin_hint());
                    cts.insert(id, r);
                }
                HomOp::MulPlain { a, p } => {
                    hom_ops += 1;
                    let r = cts[a].mul_plain(&pts[p], &self.params);
                    cts.insert(id, r);
                }
                HomOp::Aut { a, k } => {
                    hom_ops += 1;
                    let r = cts[a].automorphism(*k, self.keys.rotation_hint(*k));
                    cts.insert(id, r);
                }
                HomOp::ModSwitch { a } => {
                    hom_ops += 1;
                    let r = cts[a].mod_switch_down();
                    cts.insert(id, r);
                }
            }
        }
        let eval_time = start.elapsed();
        let output_noise =
            program.outputs().iter().map(|o| self.keys.decrypt_noise(&cts[o])).collect();
        let outputs = program.outputs().iter().map(|o| self.keys.decrypt(&cts[o])).collect();
        FunctionalRun { outputs, output_noise, eval_time, hom_ops }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_fhe::encoding::SlotEncoder;
    use rand::SeedableRng;

    #[test]
    fn functional_matvec_is_correct() {
        // Listing 2's matrix-vector multiply, executed on real BGV with
        // slot-packed data: every slot of each output row must hold the
        // dot product of that row with the vector.
        let n = 64usize;
        let rows = 2usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xF1F1);
        let params = BgvParams::test_small(n, 4);
        let enc = SlotEncoder::new(&params);
        let t = params.plaintext_modulus;

        // The DSL program: per row, Mul + innerSum over the slot count.
        let mut p = Program::new(n);
        let m_rows: Vec<CtId> = (0..rows).map(|_| p.input(4)).collect();
        let v = p.input(4);
        for &row in &m_rows {
            let prod = p.mul(row, v);
            let sum = p.inner_sum(prod, n / 2);
            p.output(sum);
        }

        let exec = BgvExecutor::new(params.clone(), &p, &mut rng);
        // Data: small values so slot products stay below t.
        let vec_data: Vec<u64> = (0..n / 2).map(|j| (j % 7) as u64).collect();
        let row_data: Vec<Vec<u64>> =
            (0..rows).map(|r| (0..n / 2).map(|j| ((j + r) % 5) as u64).collect()).collect();
        let mut inputs = HashMap::new();
        for (r, &id) in m_rows.iter().enumerate() {
            inputs.insert(id, enc.encode(&[row_data[r].clone(), row_data[r].clone()], &params));
        }
        inputs.insert(v, enc.encode(&[vec_data.clone(), vec_data.clone()], &params));

        let run = exec.run(&p, &inputs, &HashMap::new(), &mut rng);
        assert_eq!(run.outputs.len(), rows);
        assert!(run.eval_time.as_nanos() > 0);
        for (r, out) in run.outputs.iter().enumerate() {
            let dot: u64 = row_data[r].iter().zip(&vec_data).map(|(&a, &b)| a * b).sum::<u64>() % t;
            let slots = enc.decode(out);
            assert!(
                slots[0].iter().all(|&s| s == dot),
                "row {r}: expected all slots = {dot}, got {:?}",
                &slots[0][..4]
            );
        }
    }

    #[test]
    fn functional_depth_chain_with_modswitch() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xF1F2);
        let params = BgvParams::test_small(64, 3);
        let mut p = Program::new(64);
        let x = p.input(3);
        let sq = p.mul(x, x);
        let down = p.mod_switch(sq);
        let y = p.mul(down, down);
        p.output(y);
        let exec = BgvExecutor::new(params.clone(), &p, &mut rng);
        let mut inputs = HashMap::new();
        inputs.insert(x, Plaintext::from_coeffs(&params, &[3]));
        let run = exec.run(&p, &inputs, &HashMap::new(), &mut rng);
        assert_eq!(run.outputs[0].coeff(0), 81, "3^4 = 81");
        assert_eq!(run.hom_ops, 3);
    }

    #[test]
    fn plain_operand_path() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xF1F3);
        let params = BgvParams::test_small(64, 2);
        let mut p = Program::new(64);
        let x = p.input(2);
        let w = p.plain_input(2);
        let y = p.mul_plain(x, w);
        let z = p.add_plain(y, w);
        p.output(z);
        let exec = BgvExecutor::new(params.clone(), &p, &mut rng);
        let mut inputs = HashMap::new();
        inputs.insert(x, Plaintext::from_coeffs(&params, &[7]));
        let mut plains = HashMap::new();
        plains.insert(w, Plaintext::from_coeffs(&params, &[3]));
        let run = exec.run(&p, &inputs, &plains, &mut rng);
        assert_eq!(run.outputs[0].coeff(0), 7 * 3 + 3);
    }
}
