//! # f1-sim — simulation and validation for the F1 reproduction
//!
//! F1's simulator is unusual (§7): because the architecture is statically
//! scheduled, it "acts more as a checker: it runs the instruction stream
//! at each component and verifies that latencies are as expected and
//! there are no missed dependences or structural hazards". This crate
//! provides:
//!
//! * [`checker`] — that checker: validates a compiled [`f1_compiler::CycleSchedule`]
//!   against its DFG and architecture (dependences, FU structural
//!   hazards, memory bandwidth), and derives the evaluation statistics:
//!   traffic breakdown (Fig 9a), power breakdown (Fig 9b) and
//!   utilization-over-time series (Fig 10).
//! * [`functional`] — the functional simulator of §8.5: executes DSL
//!   programs against the real BGV implementation to verify input-output
//!   correctness, and doubles as the *timed CPU software baseline* of
//!   Table 3.
//! * [`replay`] — capacity-faithful replay: executes a schedule's
//!   streams in cycle order against an explicit scratchpad + HBM (with
//!   evictions literally destroying on-chip copies) and compares outputs
//!   bit-for-bit against direct dataflow evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod functional;
pub mod replay;

pub use checker::{check_schedule, check_stamped, check_streams, SimReport, Timeline};
pub use functional::{bind_constants, BgvExecutor, FunctionalRun};
pub use replay::{eval_dfg, mock_inputs, replay_schedule};
