//! # f1 — facade crate for the F1 accelerator reproduction
//!
//! Re-exports the whole stack. See the README for the architecture
//! overview and DESIGN.md for the system inventory.
//!
//! ```
//! use f1::arch::ArchConfig;
//! use f1::compiler::Program;
//!
//! let program = Program::listing2_matvec(1 << 12, 4, 2);
//! let arch = ArchConfig::f1_default();
//! let (_ex, _plan, cycles) = f1::compiler_compile(&program, &arch);
//! assert!(cycles.makespan > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use f1_arch as arch;
pub use f1_compiler as compiler;
pub use f1_fhe as fhe;
pub use f1_isa as isa;
pub use f1_modarith as modarith;
pub use f1_poly as poly;
pub use f1_sim as sim;
pub use f1_workloads as workloads;

/// Compiles a DSL program end-to-end (see [`f1_compiler::compile`]).
pub fn compiler_compile(
    program: &f1_compiler::Program,
    arch: &f1_arch::ArchConfig,
) -> (f1_compiler::Expanded, f1_compiler::MovePlan, f1_compiler::CycleSchedule) {
    f1_compiler::compile(program, arch)
}
