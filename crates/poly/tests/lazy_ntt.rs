//! Differential and canonicality tests for the lazy-reduction NTT kernels.
//!
//! The lazy kernels carry residues in `[0, 2q)`/`[0, 4q)` internally, so
//! two things must hold at every public boundary: (1) outputs are
//! bit-exact with the retained strict reference transforms, and (2) no
//! public API ever returns a residue `>= q` (the correction pass cannot
//! be skipped or half-applied).

use f1_modarith::{primes, Modulus};
use f1_poly::ntt::NttTables;
use f1_poly::rns::{RnsContext, RnsPoly};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// A 30-bit FHE-friendly prime (`q ≡ 1 mod 2^16`): NTT-friendly for every
/// supported ring and the class F1's multiplier is specialized for.
fn fhe_friendly_modulus() -> Modulus {
    let q = primes::fhe_friendly_primes(30, 1)[0];
    let m = Modulus::new(q);
    assert!(m.is_fhe_friendly());
    m
}

/// A 30-bit prime that is NTT-friendly for ring `n` but *not* in the
/// FHE-friendly class — exercises the lazy kernels on the other prime
/// family the multiplier census distinguishes.
fn merely_ntt_friendly_modulus(n: usize) -> Modulus {
    let qs = primes::ntt_friendly_primes(n, 30, 24);
    let q = qs
        .into_iter()
        .find(|&q| q & 0xFFFF != 1)
        .expect("a non-FHE-friendly NTT prime exists among 24 candidates");
    let m = Modulus::new(q);
    assert!(!m.is_fhe_friendly());
    m
}

fn random_poly(n: usize, q: u32, rng: &mut impl Rng) -> Vec<u32> {
    (0..n).map(|_| rng.gen_range(0..q)).collect()
}

/// Bit-exactness of the lazy forward/inverse kernels against the strict
/// reference transforms: every supported ring dimension (2^10..2^14, the
/// paper's range) plus sub-paper sizes, both prime families, several
/// random polynomials each.
#[test]
fn lazy_matches_reference_all_supported_n_and_prime_families() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x1a2);
    for log_n in [3u32, 6, 10, 11, 12, 13, 14] {
        let n = 1usize << log_n;
        let mut moduli = vec![fhe_friendly_modulus()];
        let nttf = merely_ntt_friendly_modulus(n);
        if nttf.value() != moduli[0].value() {
            moduli.push(nttf);
        }
        for m in moduli {
            let t = NttTables::new(n, m);
            let q = m.value();
            for _ in 0..3 {
                let a = random_poly(n, q, &mut rng);
                let mut lazy = a.clone();
                let mut strict = a.clone();
                t.forward(&mut lazy);
                t.forward_reference(&mut strict);
                assert_eq!(lazy, strict, "forward n={n} q={q}");
                assert!(lazy.iter().all(|&x| x < q), "forward canonical n={n} q={q}");
                t.inverse(&mut lazy);
                t.inverse_reference(&mut strict);
                assert_eq!(lazy, strict, "inverse n={n} q={q}");
                assert_eq!(lazy, a, "roundtrip n={n} q={q}");
            }
        }
    }
}

/// Canonicality sweep across the `RnsPoly` public surface: every operator
/// that hands residues back to the caller must return values `< q` on
/// every limb.
#[test]
fn rns_public_api_returns_canonical_residues() {
    let ctx = RnsContext::for_ring(128, 30, 3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xCA1);
    let a = RnsPoly::random(&ctx, &mut rng);
    let b = RnsPoly::random(&ctx, &mut rng);
    let assert_canonical = |p: &RnsPoly, what: &str| {
        for i in 0..p.level() {
            let q = p.context().modulus(i).value();
            assert!(p.limb(i).iter().all(|&x| x < q), "{what}: limb {i} has residue >= q");
        }
    };
    assert_canonical(&a, "random");
    assert_canonical(&a.add(&b), "add");
    assert_canonical(&a.sub(&b), "sub");
    assert_canonical(&a.neg(), "neg");
    assert_canonical(&a.to_ntt(), "to_ntt");
    assert_canonical(&a.to_ntt().to_coeff(), "to_coeff");
    assert_canonical(&a.to_ntt().mul(&b.to_ntt()), "mul");
    assert_canonical(&a.mul_scalar(u32::MAX), "mul_scalar");
    assert_canonical(&a.automorphism(5), "automorphism(coeff)");
    assert_canonical(&a.to_ntt().automorphism(5), "automorphism(ntt)");
    assert_canonical(&a.truncate_level(2), "truncate_level");
    assert_canonical(&a.truncate_level(2).extend_basis(3), "extend_basis");
    let mut acc = RnsPoly::zero_ntt_at_level(&ctx, 3);
    acc.fma_assign(&a.to_ntt(), &b.to_ntt());
    assert_canonical(&acc, "fma_assign");
    let mut c = a.clone();
    c.add_assign(&b);
    c.sub_assign(&a);
    c.neg_assign();
    c.mul_scalar_assign(7);
    assert_canonical(&c, "in-place chain");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random-poly differential pinning at a fixed mid-size ring, both
    /// prime families, driven by the proptest harness.
    #[test]
    fn lazy_forward_inverse_bit_exact(seed in 0u64..1 << 48) {
        let n = 256usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for m in [fhe_friendly_modulus(), merely_ntt_friendly_modulus(n)] {
            let t = NttTables::new(n, m);
            let a = random_poly(n, m.value(), &mut rng);
            let mut lazy = a.clone();
            let mut strict = a.clone();
            t.forward(&mut lazy);
            t.forward_reference(&mut strict);
            prop_assert_eq!(&lazy, &strict);
            t.inverse(&mut lazy);
            t.inverse_reference(&mut strict);
            prop_assert_eq!(&lazy, &strict);
            prop_assert_eq!(&lazy, &a);
        }
    }

    /// The negacyclic product of the lazy pipeline stays bit-exact with
    /// the schoolbook oracle (and canonical).
    #[test]
    fn lazy_negacyclic_mul_matches_schoolbook(seed in 0u64..1 << 48) {
        let n = 64usize;
        let m = fhe_friendly_modulus();
        let t = NttTables::new(n, m);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = random_poly(n, m.value(), &mut rng);
        let b = random_poly(n, m.value(), &mut rng);
        let got = t.negacyclic_mul(&a, &b);
        let want = f1_poly::ntt::negacyclic_mul_schoolbook(&a, &b, &m);
        prop_assert_eq!(&got, &want);
        prop_assert!(got.iter().all(|&x| x < m.value()));
    }
}
