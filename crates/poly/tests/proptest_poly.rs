//! Property-based tests for the polynomial substrate.
//!
//! These pin the algebraic invariants the F1 functional units rely on:
//! NTT linearity and invertibility, ring axioms under negacyclic
//! convolution, automorphism group structure, and the equivalence of the
//! hardware-shaped kernels with their reference definitions.

use f1_modarith::{primes, Modulus};
use f1_poly::automorphism;
use f1_poly::four_step::FourStepNtt;
use f1_poly::ntt::NttTables;
use f1_poly::rns::{RnsContext, RnsPoly};
use proptest::prelude::*;
use std::sync::Arc;

const N: usize = 64;

fn modulus() -> Modulus {
    Modulus::new(primes::ntt_friendly_primes(N, 30, 1)[0])
}

fn ctx() -> Arc<RnsContext> {
    RnsContext::for_ring(N, 30, 3)
}

fn arb_poly(q: u32) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..q, N)
}

fn arb_signed() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-1000i64..1000, N)
}

fn odd_exponent() -> impl Strategy<Value = usize> {
    (0..N).prop_map(|i| 2 * i + 1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ntt_roundtrip(a in arb_poly(modulus().value())) {
        let t = NttTables::new(N, modulus());
        let mut b = a.clone();
        t.forward(&mut b);
        t.inverse(&mut b);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn ntt_is_linear(a in arb_poly(modulus().value()), b in arb_poly(modulus().value())) {
        let m = modulus();
        let t = NttTables::new(N, m);
        let sum: Vec<u32> = a.iter().zip(&b).map(|(&x, &y)| m.add(x, y)).collect();
        let (mut fa, mut fb, mut fs) = (a.clone(), b.clone(), sum);
        t.forward(&mut fa);
        t.forward(&mut fb);
        t.forward(&mut fs);
        let lin: Vec<u32> = fa.iter().zip(&fb).map(|(&x, &y)| m.add(x, y)).collect();
        prop_assert_eq!(fs, lin);
    }

    #[test]
    fn four_step_equals_reference(a in arb_poly(modulus().value())) {
        let m = modulus();
        let fs = FourStepNtt::new(N, 8, m);
        let reference = NttTables::new(N, m);
        let got = fs.forward(&a);
        let mut want = a.clone();
        reference.forward(&mut want);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn convolution_commutes(a in arb_poly(modulus().value()), b in arb_poly(modulus().value())) {
        let t = NttTables::new(N, modulus());
        prop_assert_eq!(t.negacyclic_mul(&a, &b), t.negacyclic_mul(&b, &a));
    }

    #[test]
    fn convolution_distributes(
        a in arb_poly(modulus().value()),
        b in arb_poly(modulus().value()),
        c in arb_poly(modulus().value()),
    ) {
        let m = modulus();
        let t = NttTables::new(N, m);
        let bc: Vec<u32> = b.iter().zip(&c).map(|(&x, &y)| m.add(x, y)).collect();
        let lhs = t.negacyclic_mul(&a, &bc);
        let ab = t.negacyclic_mul(&a, &b);
        let ac = t.negacyclic_mul(&a, &c);
        let rhs: Vec<u32> = ab.iter().zip(&ac).map(|(&x, &y)| m.add(x, y)).collect();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn automorphism_matrix_pipeline_equivalence(
        a in arb_poly(modulus().value()),
        k in odd_exponent(),
    ) {
        let m = modulus();
        prop_assert_eq!(
            automorphism::apply_via_matrix(&a, k, 8, &m),
            automorphism::apply_coeff(&a, k, &m)
        );
    }

    #[test]
    fn automorphism_ntt_commutes(a in arb_poly(modulus().value()), k in odd_exponent()) {
        let m = modulus();
        let t = NttTables::new(N, m);
        let mut lhs = automorphism::apply_coeff(&a, k, &m);
        t.forward(&mut lhs);
        let mut a_hat = a.clone();
        t.forward(&mut a_hat);
        prop_assert_eq!(lhs, automorphism::apply_ntt(&a_hat, k));
    }

    #[test]
    fn automorphism_preserves_addition(
        a in arb_poly(modulus().value()),
        b in arb_poly(modulus().value()),
        k in odd_exponent(),
    ) {
        let m = modulus();
        let sum: Vec<u32> = a.iter().zip(&b).map(|(&x, &y)| m.add(x, y)).collect();
        let lhs = automorphism::apply_coeff(&sum, k, &m);
        let sa = automorphism::apply_coeff(&a, k, &m);
        let sb = automorphism::apply_coeff(&b, k, &m);
        let rhs: Vec<u32> = sa.iter().zip(&sb).map(|(&x, &y)| m.add(x, y)).collect();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn rns_mul_matches_bigint_semantics(a in arb_signed(), b in arb_signed()) {
        // Multiply small polynomials in RNS and compare against the level-1
        // direct convolution: CRT consistency of the limb-parallel product.
        let c = ctx();
        let pa = RnsPoly::from_signed_coeffs(&c, 3, &a);
        let pb = RnsPoly::from_signed_coeffs(&c, 3, &b);
        let prod = pa.to_ntt().mul(&pb.to_ntt()).to_coeff();
        // Reference: schoolbook over i128 then reduce.
        let mut want = vec![0i128; N];
        for i in 0..N {
            for j in 0..N {
                let p = a[i] as i128 * b[j] as i128;
                if i + j < N {
                    want[i + j] += p;
                } else {
                    want[i + j - N] -= p;
                }
            }
        }
        let want_poly = RnsPoly::from_signed_coeffs(
            &c,
            3,
            &want.iter().map(|&x| x as i64).collect::<Vec<_>>(),
        );
        prop_assert_eq!(prod, want_poly);
    }

    #[test]
    fn rns_extend_basis_is_section_of_truncate(a in arb_signed()) {
        let c = ctx();
        let p = RnsPoly::from_signed_coeffs(&c, 2, &a);
        let ext = p.extend_basis(3);
        prop_assert_eq!(ext.truncate_level(2), p);
    }
}
