//! The quadrant-swap transpose unit (§5.1, Fig 7).
//!
//! Both the automorphism unit and the NTT unit need to transpose an
//! `E × E` matrix at full streaming rate. F1's unit decomposes the
//! transpose recursively: swap the off-diagonal quadrants `B` and `C`,
//! then transpose each quadrant, using SRAM-buffered quadrant-swap blocks
//! that are fully pipelined. This module provides:
//!
//! * [`transpose_rows`] — the plain functional transpose used throughout
//!   the polynomial kernels.
//! * [`QuadrantSwapUnit`] — an operational model of the hardware unit that
//!   performs the transpose *only* through quadrant swaps, validating the
//!   recursive decomposition, and reports its pipeline occupancy.

/// Transposes a rectangular matrix given as rows. Plain functional version.
///
/// # Panics
///
/// Panics if rows have inconsistent lengths.
pub fn transpose_rows(rows: &[Vec<u32>]) -> Vec<Vec<u32>> {
    if rows.is_empty() {
        return Vec::new();
    }
    let w = rows[0].len();
    for r in rows {
        assert_eq!(r.len(), w, "ragged matrix");
    }
    let mut out = vec![vec![0u32; rows.len()]; w];
    for (i, row) in rows.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            out[j][i] = v;
        }
    }
    out
}

/// Operational model of the recursive quadrant-swap transpose unit.
///
/// The unit transposes `e × e` tiles through `log2(e)` layers of quadrant
/// swaps (Fig 7 right): layer `d` swaps the off-diagonal quadrants of every
/// `(e >> d) × (e >> d)` sub-tile. For `G < E` inputs (a `g × e` matrix),
/// the initial layers whose tiles are larger than `g` rows are bypassed,
/// exactly as the paper describes ("selectively bypassing some of the
/// initial quadrant swaps").
#[derive(Debug, Clone)]
pub struct QuadrantSwapUnit {
    e: usize,
}

impl QuadrantSwapUnit {
    /// Creates a unit for `e × e` tiles (`e` a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `e` is not a power of two.
    pub fn new(e: usize) -> Self {
        assert!(e.is_power_of_two(), "tile size must be a power of two");
        Self { e }
    }

    /// Tile edge length `E`.
    pub fn e(&self) -> usize {
        self.e
    }

    /// Transposes a square `e × e` matrix using only quadrant swaps.
    ///
    /// Each layer is a data movement the hardware realizes with the
    /// SRAM-buffered quadrant-swap block; the composition of all layers is
    /// a full transpose (the recursive identity of §5.1).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not `e × e`.
    pub fn transpose_square(&self, m: &[Vec<u32>]) -> Vec<Vec<u32>> {
        assert_eq!(m.len(), self.e, "matrix must have E rows");
        let mut cur: Vec<Vec<u32>> = m.to_vec();
        for row in &cur {
            assert_eq!(row.len(), self.e, "matrix must have E columns");
        }
        let mut tile = self.e;
        while tile >= 2 {
            let half = tile / 2;
            for tr in (0..self.e).step_by(tile) {
                for tc in (0..self.e).step_by(tile) {
                    // Swap quadrant B (top-right) with C (bottom-left).
                    for i in 0..half {
                        for j in 0..half {
                            let (r1, c1) = (tr + i, tc + half + j);
                            let (r2, c2) = (tr + half + i, tc + j);
                            let tmp = cur[r1][c1];
                            cur[r1][c1] = cur[r2][c2];
                            cur[r2][c2] = tmp;
                        }
                    }
                }
            }
            tile = half;
        }
        cur
    }

    /// Transposes a `g × e` matrix (`g <= e`, both powers of two) by
    /// embedding it in an `e × e` tile, bypassing the layers that a
    /// narrower input does not need, and extracting the `e × g` result.
    ///
    /// # Panics
    ///
    /// Panics if `g > e` or dimensions are not powers of two.
    pub fn transpose_rect(&self, m: &[Vec<u32>]) -> Vec<Vec<u32>> {
        let g = m.len();
        assert!(g <= self.e && g.is_power_of_two(), "need power-of-two G <= E");
        let mut padded = vec![vec![0u32; self.e]; self.e];
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row.len(), self.e);
            padded[i].copy_from_slice(row);
        }
        let t = self.transpose_square(&padded);
        t.into_iter().map(|row| row[..g].to_vec()).collect()
    }

    /// Pipeline occupancy in cycles for one `g × e` transpose at one
    /// element-vector (`e` elements) per cycle: the unit is fully pipelined,
    /// so occupancy equals the number of input vectors, `g`.
    pub fn occupancy_cycles(&self, g: usize) -> u64 {
        g as u64
    }

    /// Pipeline fill latency: the first output vector appears after roughly
    /// half the rows of the largest quadrant-swap stage have been buffered
    /// (`e/2` cycles), matching the three-step operation of Fig 7.
    pub fn latency_cycles(&self) -> u64 {
        (self.e / 2) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_matrix(r: usize, c: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..r).map(|_| (0..c).map(|_| rng.gen()).collect()).collect()
    }

    #[test]
    fn plain_transpose_involution() {
        let m = random_matrix(8, 16, 1);
        assert_eq!(transpose_rows(&transpose_rows(&m)), m);
        assert_eq!(transpose_rows(&m)[3][5], m[5][3]);
    }

    #[test]
    fn quadrant_swap_equals_plain_transpose() {
        for e in [2usize, 4, 8, 32, 128] {
            let unit = QuadrantSwapUnit::new(e);
            let m = random_matrix(e, e, e as u64);
            assert_eq!(unit.transpose_square(&m), transpose_rows(&m), "e={e}");
        }
    }

    #[test]
    fn rectangular_transpose_bypasses_layers() {
        // G < E: a 4x16 matrix transposed to 16x4 through the same unit.
        let unit = QuadrantSwapUnit::new(16);
        for g in [1usize, 2, 4, 8, 16] {
            let m = random_matrix(g, 16, 100 + g as u64);
            assert_eq!(unit.transpose_rect(&m), transpose_rows(&m), "g={g}");
        }
    }

    #[test]
    fn pipeline_model_is_throughput_limited() {
        let unit = QuadrantSwapUnit::new(128);
        assert_eq!(unit.occupancy_cycles(128), 128);
        assert_eq!(unit.occupancy_cycles(8), 8);
        assert_eq!(unit.latency_cycles(), 64);
    }

    #[test]
    fn empty_and_single() {
        assert!(transpose_rows(&[]).is_empty());
        let one = vec![vec![7u32]];
        assert_eq!(transpose_rows(&one), one);
        let unit = QuadrantSwapUnit::new(1);
        assert_eq!(unit.transpose_square(&one), one);
    }
}
