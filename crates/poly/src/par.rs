//! Limb-level parallelism for RNS kernels.
//!
//! RNS limbs are embarrassingly parallel: every NTT, lift, or element-wise
//! pass touches one limb independently (the same independence F1 exploits
//! by issuing one instruction per residue polynomial). [`par_limbs`] runs a
//! per-limb closure across scoped threads — backed by the offline `rayon`
//! shim (`std::thread::scope` underneath) — and falls back to a serial loop
//! whenever the work is too small to pay for thread spawns, so results are
//! bit-identical either way.

/// Minimum per-limb element count before threads are worth spawning: below
/// this an `N`-point NTT is far cheaper than a thread launch.
const MIN_PAR_N: usize = 4096;

/// Returns the thread count to use for `limbs` limbs of `n` elements each:
/// 1 (serial) when parallelism is disabled via `F1_PAR_LIMBS=0|1`, the host
/// is single-core, or the work is too small.
fn limb_threads(limbs: usize, n: usize) -> usize {
    if limbs < 2 || n < MIN_PAR_N {
        return 1;
    }
    // A malformed F1_PAR_LIMBS panics (crate::env policy); 0 and 1 both
    // mean "serial".
    let cap = crate::env::parse_env_or("F1_PAR_LIMBS", rayon::current_num_threads()).max(1);
    cap.min(limbs)
}

/// Applies `f(limb_index, limb_slice)` to every `n`-element limb of the
/// flat limb-major buffer `data`, in parallel when profitable.
///
/// `f` must be safe to run concurrently on distinct limbs (it receives
/// disjoint `&mut` slices, so only shared captured state needs `Sync`).
/// Limbs are distributed in contiguous groups, one scoped thread per group.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `n`.
pub fn par_limbs<F>(data: &mut [u32], n: usize, f: F)
where
    F: Fn(usize, &mut [u32]) + Sync,
{
    assert!(n > 0 && data.len().is_multiple_of(n), "buffer must hold whole limbs");
    let limbs = data.len() / n;
    let threads = limb_threads(limbs, n);
    if threads <= 1 {
        for (i, limb) in data.chunks_exact_mut(n).enumerate() {
            f(i, limb);
        }
        return;
    }
    let per_group = limbs.div_ceil(threads);
    let f = &f;
    rayon::scope(|s| {
        for (g, group) in data.chunks_mut(per_group * n).enumerate() {
            s.spawn(move || {
                for (k, limb) in group.chunks_exact_mut(n).enumerate() {
                    f(g * per_group + k, limb);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_small_inputs_work() {
        let mut data = vec![0u32; 6];
        par_limbs(&mut data, 2, |i, limb| limb.iter_mut().for_each(|x| *x = i as u32));
        assert_eq!(data, vec![0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn parallel_path_matches_serial() {
        let n = MIN_PAR_N;
        let limbs = 5;
        let mut par = vec![0u32; limbs * n];
        par_limbs(&mut par, n, |i, limb| {
            for (j, x) in limb.iter_mut().enumerate() {
                *x = (i * n + j) as u32;
            }
        });
        let want: Vec<u32> = (0..(limbs * n) as u32).collect();
        assert_eq!(par, want);
    }

    #[test]
    #[should_panic(expected = "whole limbs")]
    fn rejects_ragged_buffers() {
        let mut data = vec![0u32; 7];
        par_limbs(&mut data, 2, |_, _| {});
    }
}
