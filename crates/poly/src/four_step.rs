//! The four-step NTT decomposition implemented by F1's NTT unit (§5.2).
//!
//! A full 16K-point NTT datapath is prohibitive in hardware, so F1 composes
//! `N`-point NTTs from `E = 128`-point NTTs using the four-step (Bailey \[6\])
//! algorithm: first-stage `E`-point NTTs, a twiddle multiplication, a
//! transpose (the quadrant-swap unit of [`crate::transpose`]), and
//! second-stage NTTs, with negacyclic pre/post twists folded into the
//! twiddle SRAM contents so that both forward and inverse negacyclic NTTs
//! run through the *same* pipeline (the paper's §5.2 refinement of \[49\]).
//!
//! This module is the functional model of that unit: bit-exact against the
//! reference transforms in [`crate::ntt`], structured exactly as the
//! hardware dataflow (two passes of small NTTs around a twiddle multiply
//! and transposes).

use crate::ntt::bit_reverse;
use crate::transpose::transpose_rows;
use f1_modarith::mul::ShoupMul;
use f1_modarith::Modulus;

/// Precomputed state for four-step NTTs of size `n = g * e`.
///
/// `e` is the hardware lane count (128 in F1's implementation); `g = n / e`
/// is the number of `e`-element chunks a residue polynomial occupies.
/// Supports `g <= e` (the hardware bypasses butterfly layers of the second
/// NTT when `g < e`).
#[derive(Debug, Clone)]
pub struct FourStepNtt {
    n: usize,
    e: usize,
    g: usize,
    modulus: Modulus,
    /// Stage twiddles for the cyclic e-point NTT (root of order e).
    stage_e: CyclicNtt,
    /// Stage twiddles for the cyclic g-point NTT (root of order g).
    stage_g: CyclicNtt,
    /// Inverse-direction small NTTs.
    stage_e_inv: CyclicNtt,
    stage_g_inv: CyclicNtt,
    /// Middle twiddles w^{j*a} (g rows of e), forward direction.
    mid_fwd: Vec<ShoupMul>,
    /// Middle twiddles w^{-j*a}, inverse direction.
    mid_inv: Vec<ShoupMul>,
    /// Negacyclic pre-twist ψ^i (forward), folded into the twiddle SRAM in
    /// hardware; kept separate here for clarity.
    twist_fwd: Vec<ShoupMul>,
    /// Negacyclic post-twist ψ^{-i} * n^{-1} (inverse).
    twist_inv: Vec<ShoupMul>,
}

/// A plain cyclic NTT of power-of-two size with natural-order input/output.
///
/// Small helper used for the per-row transforms of the four-step pipeline.
#[derive(Debug, Clone)]
struct CyclicNtt {
    size: usize,
    modulus: Modulus,
    /// Twiddles indexed like the merged tables of [`crate::ntt::NttTables`]:
    /// `tw[m + i]` is the butterfly constant for group `i` of the stage
    /// with `m` groups.
    tw: Vec<ShoupMul>,
}

impl CyclicNtt {
    /// Builds tables for a cyclic NTT with the given root of unity `w`
    /// (must have exact order `size`).
    fn new(size: usize, w: u32, modulus: Modulus) -> Self {
        assert!(size.is_power_of_two());
        debug_assert_eq!(modulus.pow(w, size as u64), 1);
        // tw[span + j] = w^{ (size / (2*span)) * j }: the butterfly constant
        // for offset j within each group of the stage with butterfly span
        // `span`. The input is bit-reverse permuted before the stages run,
        // so the exponent is the plain offset j.
        let mut tw = vec![ShoupMul::new(1 % modulus.value(), &modulus); size.max(1)];
        let mut span = 1usize;
        while span < size {
            let stage_root = modulus.pow(w, (size / (2 * span)) as u64);
            let mut cur = 1u32;
            for j in 0..span {
                tw[span + j] = ShoupMul::new(cur, &modulus);
                cur = modulus.mul(cur, stage_root);
            }
            span *= 2;
        }
        Self { size, modulus, tw }
    }

    /// In-place cyclic NTT, natural order in, natural order out.
    fn forward(&self, a: &mut [u32]) {
        debug_assert_eq!(a.len(), self.size);
        if self.size == 1 {
            return;
        }
        let q = self.modulus.value();
        // Bit-reverse permute the input, then run DIT butterflies; output
        // comes out in natural order.
        let log = self.size.trailing_zeros();
        for i in 0..self.size {
            let r = bit_reverse(i, log);
            if r > i {
                a.swap(i, r);
            }
        }
        let mut span = 1usize;
        while span < self.size {
            let groups = self.size / (2 * span);
            for grp in 0..groups {
                let base = grp * span * 2;
                for j in 0..span {
                    let w = &self.tw[span + j];
                    let u = a[base + j];
                    let v = w.mul(a[base + j + span], q);
                    a[base + j] = self.modulus.add(u, v);
                    a[base + j + span] = self.modulus.sub(u, v);
                }
            }
            span *= 2;
        }
    }
}

impl FourStepNtt {
    /// Builds four-step tables for ring dimension `n` with `e` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not divisible into `g = n/e` chunks with
    /// `1 <= g <= e`, or if the modulus lacks the required roots of unity.
    pub fn new(n: usize, e: usize, modulus: Modulus) -> Self {
        assert!(n.is_power_of_two() && e.is_power_of_two(), "sizes must be powers of two");
        assert!(n >= e, "n must be at least e (got n={n}, e={e})");
        let g = n / e;
        assert!(g <= e, "four-step unit requires G <= E (got G={g}, E={e})");
        let psi = modulus.primitive_root_of_unity(2 * n as u64);
        let w = modulus.mul(psi, psi); // primitive n-th root
        let w_inv = modulus.inv(w);
        let psi_inv = modulus.inv(psi);
        let w_e = modulus.pow(w, g as u64); // order e
        let w_g = modulus.pow(w, e as u64); // order g
        let stage_e = CyclicNtt::new(e, w_e, modulus);
        let stage_g = CyclicNtt::new(g, w_g, modulus);
        let stage_e_inv = CyclicNtt::new(e, modulus.inv(w_e), modulus);
        let stage_g_inv = CyclicNtt::new(g, modulus.inv(w_g), modulus);

        let mut mid_fwd = Vec::with_capacity(n);
        let mut mid_inv = Vec::with_capacity(n);
        for j in 0..g {
            for a in 0..e {
                let exp = (j * a) as u64;
                mid_fwd.push(ShoupMul::new(modulus.pow(w, exp), &modulus));
                mid_inv.push(ShoupMul::new(modulus.pow(w_inv, exp), &modulus));
            }
        }
        let n_inv = modulus.inv(n as u32 % modulus.value());
        let mut twist_fwd = Vec::with_capacity(n);
        let mut twist_inv = Vec::with_capacity(n);
        let mut pf = 1u32;
        let mut pi = n_inv;
        for _ in 0..n {
            twist_fwd.push(ShoupMul::new(pf, &modulus));
            twist_inv.push(ShoupMul::new(pi, &modulus));
            pf = modulus.mul(pf, psi);
            pi = modulus.mul(pi, psi_inv);
        }
        Self {
            n,
            e,
            g,
            modulus,
            stage_e,
            stage_g,
            stage_e_inv,
            stage_g_inv,
            mid_fwd,
            mid_inv,
            twist_fwd,
            twist_inv,
        }
    }

    /// Ring dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Lane count `E`.
    pub fn e(&self) -> usize {
        self.e
    }

    /// Chunk count `G = N / E`.
    pub fn g(&self) -> usize {
        self.g
    }

    /// Forward negacyclic NTT via the four-step pipeline.
    ///
    /// Output ordering matches [`crate::ntt::NttTables::forward`] (bit-reversed
    /// evaluation order), so results are interchangeable with the reference
    /// transform.
    pub fn forward(&self, a: &[u32]) -> Vec<u32> {
        assert_eq!(a.len(), self.n);
        let q = self.modulus.value();
        let (g, e, n) = (self.g, self.e, self.n);
        // Negacyclic pre-twist: y[i] = a[i] * psi^i (twiddle-SRAM contents
        // in hardware).
        // Gather into G rows of E: row j holds y[e*G + j] for e in 0..E —
        // the streaming read order of the hardware unit.
        let mut rows: Vec<Vec<u32>> = vec![vec![0u32; e]; g];
        for j in 0..g {
            for c in 0..e {
                let idx = c * g + j;
                rows[j][c] = self.twist_fwd[idx].mul(a[idx], q);
            }
        }
        // Step 1: E-point NTT on each row (the first DIT NTT of Fig 8).
        for row in rows.iter_mut() {
            self.stage_e.forward(row);
        }
        // Step 2: twiddle multiply w^{j*a}.
        for (j, row) in rows.iter_mut().enumerate() {
            for (aidx, x) in row.iter_mut().enumerate() {
                *x = self.mid_fwd[j * e + aidx].mul(*x, q);
            }
        }
        // Step 3: transpose (quadrant-swap unit).
        let cols = transpose_rows(&rows);
        // Step 4: G-point NTT on each transposed row (the second, DIF NTT;
        // layers beyond log2(G) are bypassed in hardware).
        let mut out_mat = cols;
        for row in out_mat.iter_mut() {
            self.stage_g.forward(row);
        }
        // Scatter to natural order X[a + E*b] = V[a][b], then apply the
        // bit-reversal that the reference transform's output convention uses.
        let log_n = n.trailing_zeros();
        let mut out = vec![0u32; n];
        for aidx in 0..e {
            for b in 0..g {
                let k = aidx + e * b;
                out[bit_reverse(k, log_n)] = out_mat[aidx][b];
            }
        }
        out
    }

    /// Inverse negacyclic NTT via the four-step pipeline.
    ///
    /// Accepts input in the [`crate::ntt::NttTables`] bit-reversed order and returns
    /// coefficients in natural order, matching [`crate::ntt::NttTables::inverse`].
    pub fn inverse(&self, a_hat: &[u32]) -> Vec<u32> {
        assert_eq!(a_hat.len(), self.n);
        let q = self.modulus.value();
        let (g, e, n) = (self.g, self.e, self.n);
        let log_n = n.trailing_zeros();
        // Undo the storage bit-reversal: natural-order spectrum Y[k].
        // Inverse cyclic DFT via four-step with root w^{-1}: by symmetry of
        // the derivation, x[cG + j] = (1/N) sum_k Y[k] w^{-k(cG+j)} — run
        // the same pipeline on Y with inverse-direction tables, reading the
        // roles of (rows, cols) mirrored.
        let mut rows: Vec<Vec<u32>> = vec![vec![0u32; e]; g];
        for j in 0..g {
            for c in 0..e {
                // Gather Y[c*g + j] pattern mirrored: we process the
                // spectrum as G rows of E in the k = a + E*b layout:
                // row j of the inverse holds Y[j + G*c']? Use the direct
                // mirror: inverse of `forward` output mapping.
                let k = c * g + j;
                rows[j][c] = a_hat[bit_reverse(k, log_n)];
            }
        }
        for row in rows.iter_mut() {
            self.stage_e_inv.forward(row);
        }
        for (j, row) in rows.iter_mut().enumerate() {
            for (aidx, x) in row.iter_mut().enumerate() {
                *x = self.mid_inv[j * e + aidx].mul(*x, q);
            }
        }
        let cols = transpose_rows(&rows);
        let mut mat = cols;
        for row in mat.iter_mut() {
            self.stage_g_inv.forward(row);
        }
        // Scatter: x_twisted[a + E*b] = V[a][b]; then undo the negacyclic
        // twist and the 1/N scale (twist_inv = psi^{-i}/N).
        let mut out = vec![0u32; n];
        for aidx in 0..e {
            for b in 0..g {
                let k = aidx + e * b;
                out[k] = self.twist_inv[k].mul(mat[aidx][b], q);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntt::NttTables;
    use f1_modarith::primes;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize, e: usize) -> (FourStepNtt, NttTables) {
        let q = primes::ntt_friendly_primes(n, 30, 1)[0];
        let m = Modulus::new(q);
        (FourStepNtt::new(n, e, m), NttTables::new(n, m))
    }

    #[test]
    fn four_step_matches_reference_forward() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for (n, e) in [(64usize, 8usize), (256, 16), (1024, 32), (16384, 128)] {
            let (fs, reference) = setup(n, e);
            let a: Vec<u32> = (0..n).map(|_| rng.gen_range(0..fs.modulus.value())).collect();
            let got = fs.forward(&a);
            let mut want = a.clone();
            reference.forward(&mut want);
            assert_eq!(got, want, "n={n}, e={e}");
        }
    }

    #[test]
    fn four_step_matches_reference_inverse() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        for (n, e) in [(64usize, 8usize), (1024, 32), (4096, 128)] {
            let (fs, reference) = setup(n, e);
            let a_hat: Vec<u32> = (0..n).map(|_| rng.gen_range(0..fs.modulus.value())).collect();
            let got = fs.inverse(&a_hat);
            let mut want = a_hat.clone();
            reference.inverse(&mut want);
            assert_eq!(got, want, "n={n}, e={e}");
        }
    }

    #[test]
    fn four_step_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let (fs, _) = setup(2048, 128);
        let a: Vec<u32> = (0..2048).map(|_| rng.gen_range(0..fs.modulus.value())).collect();
        assert_eq!(fs.inverse(&fs.forward(&a)), a);
    }

    #[test]
    fn supports_all_paper_ring_sizes_at_e128() {
        // N from 1K to 16K with E=128 lanes: G = 8..128, all G <= E.
        for log_n in 10..=14 {
            let n = 1usize << log_n;
            let (fs, _) = setup(n, 128);
            assert_eq!(fs.g(), n / 128);
            let a: Vec<u32> = (0..n as u32).collect();
            assert_eq!(fs.inverse(&fs.forward(&a)), a, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "G <= E")]
    fn rejects_too_many_groups() {
        let q = primes::ntt_friendly_primes(1 << 14, 30, 1)[0];
        FourStepNtt::new(1 << 14, 8, Modulus::new(q));
    }
}
