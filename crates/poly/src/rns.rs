//! RNS polynomial contexts and the `RVec`-of-limbs polynomial type (§2.3).
//!
//! A ciphertext polynomial with a wide modulus `Q = q_1 q_2 ... q_L` is
//! stored as `L` *residue polynomials* with 32-bit coefficients — the
//! paper's `RVec[L]`. Every F1 instruction operates on one residue
//! polynomial; homomorphic operations loop over limbs.

use crate::automorphism;
use crate::ntt::NttTables;
use crate::par::par_limbs;
use f1_modarith::{primes, slice_ops, Modulus, UBig};
use rand::distributions::Distribution;
use rand::Rng;
use std::fmt;
use std::sync::Arc;

/// One residue polynomial: `N` coefficients modulo a single 32-bit prime.
///
/// This is the paper's `RVec` — the unit of data F1 instructions consume
/// (64 KB at `N = 16K`). [`RnsPoly`] stores its limbs contiguously in one
/// flat allocation; owned `ResiduePoly` values appear only at API edges
/// (kernel outputs, test fixtures).
pub type ResiduePoly = Vec<u32>;

/// Which representation a polynomial's limbs are currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Coefficient (power-basis) representation.
    Coefficient,
    /// NTT (evaluation) representation, bit-reversed slot order.
    Ntt,
}

/// Shared per-ring state: the modulus chain and NTT tables for every limb.
///
/// A context fixes the ring dimension `N` and the *full* RNS chain
/// `q_1..q_L`; polynomials carry a level `l <= L` and use the chain prefix.
/// Modulus switching drops limbs from the top of a polynomial without
/// touching the context.
pub struct RnsContext {
    n: usize,
    moduli: Vec<Modulus>,
    tables: Vec<NttTables>,
    /// Precomputed CRT data per level (index l-1 holds data for l limbs).
    crt: Vec<CrtLevel>,
}

/// CRT precomputation for one level (prefix of `l` limbs).
///
/// Exposed so higher layers (key-switching, base extension) can reuse the
/// same tables instead of recomputing big-integer products.
#[derive(Debug, Clone)]
pub struct CrtLevel {
    /// `Q_l = q_1 * ... * q_l`.
    pub q_big: UBig,
    /// `Q_l / 2`.
    pub q_half: UBig,
    /// For each limb i: `Q_l / q_i` as a big integer.
    pub q_over_qi: Vec<UBig>,
    /// For each limb i: `(Q_l / q_i)^{-1} mod q_i`.
    pub q_over_qi_inv: Vec<u32>,
}

impl fmt::Debug for RnsContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RnsContext")
            .field("n", &self.n)
            .field("moduli", &self.moduli.iter().map(|m| m.value()).collect::<Vec<_>>())
            .finish()
    }
}

impl RnsContext {
    /// Builds a context for ring dimension `n` with `l` freshly generated
    /// NTT-friendly primes of `bits` bits.
    pub fn for_ring(n: usize, bits: u32, l: usize) -> Arc<Self> {
        let qs = primes::ntt_friendly_primes(n, bits, l);
        Self::from_moduli(n, &qs)
    }

    /// Builds a context from an explicit modulus chain.
    ///
    /// # Panics
    ///
    /// Panics if any modulus is not NTT-friendly for `n`, or the chain has
    /// duplicates.
    pub fn from_moduli(n: usize, qs: &[u32]) -> Arc<Self> {
        assert!(!qs.is_empty(), "modulus chain must be non-empty");
        let mut seen = qs.to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), qs.len(), "modulus chain must be duplicate-free");
        let moduli: Vec<Modulus> = qs.iter().map(|&q| Modulus::new(q)).collect();
        let tables: Vec<NttTables> = moduli.iter().map(|m| NttTables::new(n, *m)).collect();
        let mut crt = Vec::with_capacity(qs.len());
        for l in 1..=qs.len() {
            let q_big = UBig::product_of(qs[..l].iter().map(|&q| q as u64));
            let q_half = q_big.half();
            let mut q_over_qi = Vec::with_capacity(l);
            let mut q_over_qi_inv = Vec::with_capacity(l);
            for i in 0..l {
                let (qi_big, rem) = q_big.div_rem_u64(qs[i] as u64);
                debug_assert_eq!(rem, 0);
                let qi_mod = qi_big.rem_u64(qs[i] as u64) as u32;
                q_over_qi_inv.push(moduli[i].inv(qi_mod));
                q_over_qi.push(qi_big);
            }
            crt.push(CrtLevel { q_big, q_half, q_over_qi, q_over_qi_inv });
        }
        Arc::new(Self { n, moduli, tables, crt })
    }

    /// Ring dimension `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Maximum level (length of the full modulus chain).
    pub fn max_level(&self) -> usize {
        self.moduli.len()
    }

    /// The modulus chain.
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }

    /// The modulus of limb `i`.
    pub fn modulus(&self, i: usize) -> &Modulus {
        &self.moduli[i]
    }

    /// NTT tables for limb `i`.
    pub fn tables(&self, i: usize) -> &NttTables {
        &self.tables[i]
    }

    /// `Q_l` for a given level, as a big integer.
    pub fn big_q(&self, level: usize) -> &UBig {
        &self.crt[level - 1].q_big
    }

    /// CRT precomputation for a level.
    pub fn crt_level(&self, level: usize) -> &CrtLevel {
        &self.crt[level - 1]
    }

    /// Total bits of the level-`l` modulus, `log2 Q_l` rounded up.
    pub fn log_q(&self, level: usize) -> u32 {
        self.crt[level - 1].q_big.bit_len()
    }
}

/// An RNS polynomial: `level` residue limbs over a shared context.
///
/// Storage is a single flat limb-major `Vec<u32>`: limb `i` occupies
/// `[i*N, (i+1)*N)`. One allocation per polynomial keeps steady-state FHE
/// ops allocation-free when combined with the in-place operators
/// ([`RnsPoly::add_assign`], [`RnsPoly::mul_assign`], [`RnsPoly::fma_assign`],
/// …) and lets [`RnsPoly::clone_from`] reuse a scratch buffer.
pub struct RnsPoly {
    ctx: Arc<RnsContext>,
    level: usize,
    domain: Domain,
    /// Flat limb-major coefficient storage, `level * n` residues.
    data: Vec<u32>,
}

impl Clone for RnsPoly {
    fn clone(&self) -> Self {
        Self {
            ctx: self.ctx.clone(),
            level: self.level,
            domain: self.domain,
            data: self.data.clone(),
        }
    }

    /// Clones `src` into `self`, reusing `self`'s allocation when it has
    /// capacity — the scratch-buffer idiom of the key-switch hot path.
    fn clone_from(&mut self, src: &Self) {
        self.ctx = src.ctx.clone();
        self.level = src.level;
        self.domain = src.domain;
        self.data.clone_from(&src.data);
    }
}

impl fmt::Debug for RnsPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RnsPoly")
            .field("n", &self.ctx.n)
            .field("level", &self.level)
            .field("domain", &self.domain)
            .finish()
    }
}

impl PartialEq for RnsPoly {
    fn eq(&self, other: &Self) -> bool {
        self.level == other.level && self.domain == other.domain && self.data == other.data
    }
}
impl Eq for RnsPoly {}

impl RnsPoly {
    /// The all-zero polynomial at the context's maximum level.
    pub fn zero(ctx: &Arc<RnsContext>) -> Self {
        Self::zero_at_level(ctx, ctx.max_level())
    }

    /// The all-zero polynomial at a given level, in coefficient domain.
    pub fn zero_at_level(ctx: &Arc<RnsContext>, level: usize) -> Self {
        assert!(level >= 1 && level <= ctx.max_level());
        Self { ctx: ctx.clone(), level, domain: Domain::Coefficient, data: vec![0; level * ctx.n] }
    }

    /// The all-zero polynomial at a given level, pre-tagged as NTT domain
    /// (the zero vector is its own transform, so no NTTs are spent).
    pub fn zero_ntt_at_level(ctx: &Arc<RnsContext>, level: usize) -> Self {
        let mut p = Self::zero_at_level(ctx, level);
        p.domain = Domain::Ntt;
        p
    }

    /// A uniformly random polynomial at maximum level (coefficient domain).
    pub fn random(ctx: &Arc<RnsContext>, rng: &mut impl Rng) -> Self {
        Self::random_at_level(ctx, ctx.max_level(), rng)
    }

    /// A uniformly random polynomial at the given level.
    pub fn random_at_level(ctx: &Arc<RnsContext>, level: usize, rng: &mut impl Rng) -> Self {
        let mut p = Self::zero_at_level(ctx, level);
        for (i, limb) in p.data.chunks_exact_mut(ctx.n).enumerate() {
            let q = ctx.moduli[i].value();
            for x in limb.iter_mut() {
                *x = rng.gen_range(0..q);
            }
        }
        p
    }

    /// Builds a polynomial from signed coefficients (e.g. a secret key or
    /// error polynomial), reducing each into every limb.
    pub fn from_signed_coeffs(ctx: &Arc<RnsContext>, level: usize, coeffs: &[i64]) -> Self {
        assert_eq!(coeffs.len(), ctx.n);
        let mut p = Self::zero_at_level(ctx, level);
        for (i, limb) in p.data.chunks_exact_mut(ctx.n).enumerate() {
            let m = &ctx.moduli[i];
            for (x, &c) in limb.iter_mut().zip(coeffs) {
                *x = m.reduce_i64(c);
            }
        }
        p
    }

    /// Builds a polynomial from unsigned coefficients already reduced mod
    /// each limb's modulus is *not* assumed: values are reduced here.
    pub fn from_u64_coeffs(ctx: &Arc<RnsContext>, level: usize, coeffs: &[u64]) -> Self {
        assert_eq!(coeffs.len(), ctx.n);
        let mut p = Self::zero_at_level(ctx, level);
        for (i, limb) in p.data.chunks_exact_mut(ctx.n).enumerate() {
            let q = ctx.moduli[i].value() as u64;
            for (x, &c) in limb.iter_mut().zip(coeffs) {
                *x = (c % q) as u32;
            }
        }
        p
    }

    /// Samples a ternary polynomial (coefficients in {-1, 0, 1}) — the
    /// secret-key distribution.
    pub fn random_ternary(ctx: &Arc<RnsContext>, level: usize, rng: &mut impl Rng) -> Self {
        let coeffs: Vec<i64> = (0..ctx.n).map(|_| rng.gen_range(-1i64..=1)).collect();
        Self::from_signed_coeffs(ctx, level, &coeffs)
    }

    /// Samples a small error polynomial from a centered binomial
    /// distribution of parameter `eta` (standard deviation `sqrt(eta/2)`).
    pub fn random_error(ctx: &Arc<RnsContext>, level: usize, eta: u32, rng: &mut impl Rng) -> Self {
        let d = CenteredBinomial { eta };
        let coeffs: Vec<i64> = (0..ctx.n).map(|_| d.sample(rng)).collect();
        Self::from_signed_coeffs(ctx, level, &coeffs)
    }

    /// The shared context.
    pub fn context(&self) -> &Arc<RnsContext> {
        &self.ctx
    }

    /// Number of active limbs (the paper's `L` for this value).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Current representation.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Ring dimension.
    pub fn n(&self) -> usize {
        self.ctx.n
    }

    /// Read access to limb `i` (an `N`-element slice of the flat storage).
    pub fn limb(&self, i: usize) -> &[u32] {
        assert!(i < self.level, "limb {i} out of range for level {}", self.level);
        let n = self.ctx.n;
        &self.data[i * n..(i + 1) * n]
    }

    /// Mutable access to limb `i` (for kernel implementations).
    pub fn limb_mut(&mut self, i: usize) -> &mut [u32] {
        assert!(i < self.level, "limb {i} out of range for level {}", self.level);
        let n = self.ctx.n;
        &mut self.data[i * n..(i + 1) * n]
    }

    /// The flat limb-major storage (`level * n` residues, limb `i` at
    /// `[i*n, (i+1)*n)`) — the layout HBM transfers and the scratchpad
    /// model assume.
    pub fn flat(&self) -> &[u32] {
        &self.data
    }

    /// Applies `f(limb_index, modulus, limb_slice)` to every limb, using
    /// limb-level threads when the polynomial is large enough to pay for
    /// them (see [`crate::par::par_limbs`]). Results are bit-identical to
    /// the serial loop; `f` only needs `Sync` captures.
    pub fn for_each_limb_mut<F>(&mut self, f: F)
    where
        F: Fn(usize, &Modulus, &mut [u32]) + Sync,
    {
        let ctx = self.ctx.clone();
        par_limbs(&mut self.data, ctx.n, |i, limb| f(i, &ctx.moduli[i], limb));
    }

    /// Re-tags the representation without transforming the data.
    ///
    /// For kernels that fill limbs with data already in the target
    /// representation (e.g. the key-switch lift writes NTT-domain residues
    /// directly); the caller asserts the tag is truthful.
    pub fn assume_domain(&mut self, domain: Domain) {
        self.domain = domain;
    }

    /// Reshapes this polynomial in place into the all-zero polynomial at
    /// `level` limbs with the given domain tag, reusing the allocation.
    pub fn reset_zero(&mut self, level: usize, domain: Domain) {
        assert!(level >= 1 && level <= self.ctx.max_level());
        self.data.clear();
        self.data.resize(level * self.ctx.n, 0);
        self.level = level;
        self.domain = domain;
    }

    /// Reshapes this polynomial to `level` limbs with the given domain tag
    /// *without* zeroing: existing residues are unspecified (but
    /// initialized) until the caller overwrites them. For scratch buffers
    /// whose every element is about to be written — skips the `O(level*n)`
    /// memset [`RnsPoly::reset_zero`] pays.
    pub fn reshape_for_overwrite(&mut self, level: usize, domain: Domain) {
        assert!(level >= 1 && level <= self.ctx.max_level());
        self.data.resize(level * self.ctx.n, 0);
        self.level = level;
        self.domain = domain;
    }

    /// Size of this polynomial in bytes (4 bytes per coefficient residue) —
    /// the unit the data-movement analyses of §2.4 count.
    pub fn size_bytes(&self) -> usize {
        self.level * self.ctx.n * 4
    }

    /// Converts to NTT domain (no-op if already there).
    pub fn to_ntt(&self) -> Self {
        let mut out = self.clone();
        out.ntt_inplace();
        out
    }

    /// Converts to coefficient domain (no-op if already there).
    pub fn to_coeff(&self) -> Self {
        let mut out = self.clone();
        out.intt_inplace();
        out
    }

    /// In-place forward NTT on every limb (limb-parallel when large).
    pub fn ntt_inplace(&mut self) {
        if self.domain == Domain::Ntt {
            return;
        }
        let ctx = self.ctx.clone();
        par_limbs(&mut self.data, ctx.n, |i, limb| ctx.tables[i].forward(limb));
        self.domain = Domain::Ntt;
    }

    /// In-place inverse NTT on every limb (limb-parallel when large).
    pub fn intt_inplace(&mut self) {
        if self.domain == Domain::Coefficient {
            return;
        }
        let ctx = self.ctx.clone();
        par_limbs(&mut self.data, ctx.n, |i, limb| ctx.tables[i].inverse(limb));
        self.domain = Domain::Coefficient;
    }

    fn assert_compatible(&self, other: &Self) {
        assert!(Arc::ptr_eq(&self.ctx, &other.ctx), "polynomials from different contexts");
        assert_eq!(self.level, other.level, "level mismatch: {} vs {}", self.level, other.level);
        assert_eq!(self.domain, other.domain, "domain mismatch");
    }

    /// Element-wise sum (valid in either domain; NTT is linear, §2.3).
    pub fn add(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// In-place element-wise sum: `self += other`.
    pub fn add_assign(&mut self, other: &Self) {
        self.assert_compatible(other);
        let n = self.ctx.n;
        for (i, (dst, src)) in
            self.data.chunks_exact_mut(n).zip(other.data.chunks_exact(n)).enumerate()
        {
            slice_ops::add_slice(&other.ctx.moduli[i], dst, src);
        }
    }

    /// Element-wise difference.
    pub fn sub(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.sub_assign(other);
        out
    }

    /// In-place element-wise difference: `self -= other`.
    pub fn sub_assign(&mut self, other: &Self) {
        self.assert_compatible(other);
        let n = self.ctx.n;
        for (i, (dst, src)) in
            self.data.chunks_exact_mut(n).zip(other.data.chunks_exact(n)).enumerate()
        {
            slice_ops::sub_slice(&other.ctx.moduli[i], dst, src);
        }
    }

    /// Negation.
    pub fn neg(&self) -> Self {
        let mut out = self.clone();
        out.neg_assign();
        out
    }

    /// In-place negation.
    pub fn neg_assign(&mut self) {
        let ctx = self.ctx.clone();
        for (i, dst) in self.data.chunks_exact_mut(ctx.n).enumerate() {
            slice_ops::neg_slice(&ctx.moduli[i], dst);
        }
    }

    /// Element-wise product. Both operands must be in the NTT domain
    /// (polynomial multiplication is element-wise there, §2.3).
    ///
    /// # Panics
    ///
    /// Panics if either operand is in coefficient representation.
    pub fn mul(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.mul_assign(other);
        out
    }

    /// In-place element-wise product: `self *= other` (NTT domain only).
    ///
    /// # Panics
    ///
    /// Panics if either operand is in coefficient representation.
    pub fn mul_assign(&mut self, other: &Self) {
        assert_eq!(self.domain, Domain::Ntt, "mul requires NTT domain");
        self.assert_compatible(other);
        let n = self.ctx.n;
        for (i, (dst, src)) in
            self.data.chunks_exact_mut(n).zip(other.data.chunks_exact(n)).enumerate()
        {
            slice_ops::mul_slice(&other.ctx.moduli[i], dst, src);
        }
    }

    /// In-place multiply-accumulate: `self += a * b` element-wise, all
    /// three in the NTT domain — the key-switch/tensor inner loop, fused so
    /// no product temporary is allocated.
    ///
    /// # Panics
    ///
    /// Panics if any operand is in coefficient representation.
    pub fn fma_assign(&mut self, a: &Self, b: &Self) {
        assert_eq!(self.domain, Domain::Ntt, "fma requires NTT domain");
        self.assert_compatible(a);
        self.assert_compatible(b);
        let n = self.ctx.n;
        for (i, (acc, (sa, sb))) in self
            .data
            .chunks_exact_mut(n)
            .zip(a.data.chunks_exact(n).zip(b.data.chunks_exact(n)))
            .enumerate()
        {
            slice_ops::fma_slice(&a.ctx.moduli[i], acc, sa, sb);
        }
    }

    /// Multiplies every coefficient by a small scalar.
    pub fn mul_scalar(&self, s: u32) -> Self {
        let mut out = self.clone();
        out.mul_scalar_assign(s);
        out
    }

    /// In-place scalar multiply (per-limb Shoup constant hoisted).
    pub fn mul_scalar_assign(&mut self, s: u32) {
        let ctx = self.ctx.clone();
        for (i, dst) in self.data.chunks_exact_mut(ctx.n).enumerate() {
            slice_ops::scalar_mul_slice(&ctx.moduli[i], dst, s);
        }
    }

    /// Applies automorphism `σ_k` (domain-aware: a permutation in the NTT
    /// domain, an index-remap with signs in the coefficient domain).
    pub fn automorphism(&self, k: usize) -> Self {
        let mut out = self.clone();
        self.automorphism_into(k, &mut out);
        out
    }

    /// Applies `σ_k`, writing into `out` (reshaped to match `self`). The
    /// borrow rules guarantee `out` is not `self`, which the permutation
    /// scatter requires.
    pub fn automorphism_into(&self, k: usize, out: &mut Self) {
        assert!(Arc::ptr_eq(&self.ctx, &out.ctx), "polynomials from different contexts");
        out.level = self.level;
        out.domain = self.domain;
        out.data.resize(self.data.len(), 0);
        let n = self.ctx.n;
        for (i, (dst, src)) in
            out.data.chunks_exact_mut(n).zip(self.data.chunks_exact(n)).enumerate()
        {
            match self.domain {
                Domain::Coefficient => {
                    automorphism::apply_coeff_into(src, k, &self.ctx.moduli[i], dst);
                }
                Domain::Ntt => automorphism::apply_ntt_into(src, k, dst),
            }
        }
    }

    /// Truncates to the first `new_level` limbs (plain limb drop — callers
    /// implementing modulus switching must apply the divide-and-round
    /// correction themselves; see `f1-fhe`). With limb-major storage this
    /// is a copy of the surviving prefix, no per-limb allocations.
    pub fn truncate_level(&self, new_level: usize) -> Self {
        assert!(new_level >= 1 && new_level <= self.level);
        Self {
            ctx: self.ctx.clone(),
            level: new_level,
            domain: self.domain,
            data: self.data[..new_level * self.ctx.n].to_vec(),
        }
    }

    /// Extends this polynomial's RNS basis from its current level to
    /// `target_level` by lifting each coefficient from its centered CRT
    /// representative (the "small lift" used by RNS key-switching;
    /// Listing 1 line 8's `NTT(y[i], q_j)` consumes exactly this).
    ///
    /// Must be called in coefficient domain.
    ///
    /// # Panics
    ///
    /// Panics if called in NTT domain or if `target_level` exceeds the
    /// context chain.
    pub fn extend_basis(&self, target_level: usize) -> Self {
        assert_eq!(self.domain, Domain::Coefficient, "extend_basis requires coefficients");
        assert!(target_level >= self.level && target_level <= self.ctx.max_level());
        if target_level == self.level {
            return self.clone();
        }
        let mut out = self.clone();
        out.data.resize(target_level * self.ctx.n, 0);
        out.level = target_level;
        // Exact CRT lift per coefficient: reconstruct the centered value
        // and reduce into the new limbs. Exactness matters for key-switch
        // correctness tests; production RNS systems use the same math in
        // floating-point-assisted form.
        let lvl = self.ctx.crt_level(self.level);
        for j in self.level..target_level {
            let mj = *self.ctx.modulus(j);
            let limb = out.limb_mut(j);
            for (c, x) in limb.iter_mut().enumerate() {
                let (neg, mag) = crate::crt::reconstruct_centered_coeff(self, c, lvl);
                let r = (mag.rem_u64(mj.value() as u64)) as u32;
                *x = if neg { mj.neg(r) } else { r };
            }
        }
        out
    }
}

/// Centered binomial sampler: sum of `eta` fair ±1 trials halved.
struct CenteredBinomial {
    eta: u32,
}

impl Distribution<i64> for CenteredBinomial {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        let mut acc = 0i64;
        for _ in 0..self.eta {
            acc += rng.gen_range(0..=1) as i64;
            acc -= rng.gen_range(0..=1) as i64;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ctx() -> Arc<RnsContext> {
        RnsContext::for_ring(64, 30, 3)
    }

    #[test]
    fn zero_and_random_shapes() {
        let c = ctx();
        let z = RnsPoly::zero(&c);
        assert_eq!(z.level(), 3);
        assert_eq!(z.n(), 64);
        assert_eq!(z.size_bytes(), 3 * 64 * 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let r = RnsPoly::random(&c, &mut rng);
        assert_ne!(r, z);
    }

    #[test]
    fn add_sub_neg_algebra() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = RnsPoly::random(&c, &mut rng);
        let b = RnsPoly::random(&c, &mut rng);
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.add(&a.neg()), RnsPoly::zero(&c));
        assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn ntt_roundtrip_preserves_value() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = RnsPoly::random(&c, &mut rng);
        assert_eq!(a.to_ntt().to_coeff(), a);
        assert_eq!(a.to_ntt().domain(), Domain::Ntt);
    }

    #[test]
    fn mul_is_negacyclic_convolution() {
        let c = ctx();
        // a = X, b = X^{63}: product must be X^64 = -1.
        let mut a_coeffs = vec![0i64; 64];
        a_coeffs[1] = 1;
        let mut b_coeffs = vec![0i64; 64];
        b_coeffs[63] = 1;
        let a = RnsPoly::from_signed_coeffs(&c, 3, &a_coeffs);
        let b = RnsPoly::from_signed_coeffs(&c, 3, &b_coeffs);
        let prod = a.to_ntt().mul(&b.to_ntt()).to_coeff();
        let mut want = vec![0i64; 64];
        want[0] = -1;
        assert_eq!(prod, RnsPoly::from_signed_coeffs(&c, 3, &want));
    }

    #[test]
    #[should_panic(expected = "requires NTT domain")]
    fn mul_rejects_coefficient_domain() {
        let c = ctx();
        let a = RnsPoly::zero(&c);
        let _ = a.mul(&a);
    }

    #[test]
    fn scalar_multiplication_distributes() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = RnsPoly::random(&c, &mut rng);
        let b = RnsPoly::random(&c, &mut rng);
        assert_eq!(a.add(&b).mul_scalar(7), a.mul_scalar(7).add(&b.mul_scalar(7)));
    }

    #[test]
    fn automorphism_consistent_across_domains() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a = RnsPoly::random(&c, &mut rng);
        for k in [3usize, 5, 127] {
            let via_coeff = a.automorphism(k).to_ntt();
            let via_ntt = a.to_ntt().automorphism(k);
            assert_eq!(via_coeff, via_ntt, "k={k}");
        }
    }

    #[test]
    fn ternary_and_error_are_small() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let s = RnsPoly::random_ternary(&c, 3, &mut rng);
        let q0 = c.modulus(0).value();
        for &x in s.limb(0) {
            let centered = c.modulus(0).center(x);
            assert!(centered.abs() <= 1, "ternary coefficient out of range");
        }
        let e = RnsPoly::random_error(&c, 3, 8, &mut rng);
        for &x in e.limb(0) {
            assert!(c.modulus(0).center(x).abs() <= 8);
        }
        let _ = q0;
    }

    #[test]
    fn extend_basis_preserves_crt_value() {
        let c = ctx();
        // Small centered coefficients survive a basis extension exactly.
        let coeffs: Vec<i64> = (0..64).map(|i| (i as i64 % 17) - 8).collect();
        let low = RnsPoly::from_signed_coeffs(&c, 2, &coeffs);
        let ext = low.extend_basis(3);
        let direct = RnsPoly::from_signed_coeffs(&c, 3, &coeffs);
        assert_eq!(ext, direct);
    }

    #[test]
    fn truncate_level_drops_top_limbs() {
        let c = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = RnsPoly::random(&c, &mut rng);
        let t = a.truncate_level(2);
        assert_eq!(t.level(), 2);
        assert_eq!(t.limb(0), a.limb(0));
        assert_eq!(t.limb(1), a.limb(1));
    }
}
