//! Galois automorphisms `σ_k` and their vectorizable decomposition (§5.1).
//!
//! An automorphism maps `a(X) → a(X^k)` in `Z_q[X]/(X^N + 1)`, i.e. it
//! sends the coefficient at index `i` to index `ik mod N` with a sign flip
//! when `ik mod 2N >= N`. There are `N` automorphisms: `σ_k` and `σ_{-k}`
//! for every odd `0 < k < N` (paper §2.2.1).
//!
//! The hardware challenge (§5.1) is that each `σ_k` spreads elements with a
//! different stride, defeating banked-SRAM vectorization. F1's insight:
//! viewing the residue polynomial as a `G × E` matrix, every `σ_k` factors
//! into a *column permutation* that is identical for every chunk, a
//! transpose, a *row permutation* local to each transposed chunk, and a
//! transpose back — all operations on `E`-element vectors.
//! [`apply_via_matrix`] implements exactly that pipeline and is checked
//! against the direct definition.

use crate::ntt::bit_reverse;
use crate::transpose::QuadrantSwapUnit;
use f1_modarith::Modulus;

/// Validates an automorphism exponent: odd and in `(0, 2N)`.
///
/// `k` and `2N - k` give the `σ_k`/`σ_{-k}` pair of the paper.
pub fn assert_valid_exponent(k: usize, n: usize) {
    assert!(k % 2 == 1, "automorphism exponent must be odd, got {k}");
    assert!(k > 0 && k < 2 * n, "automorphism exponent must lie in (0, 2N), got {k} for N={n}");
}

/// Applies `σ_k` to a polynomial in coefficient representation.
///
/// `out[ik mod N] = ± a[i]`, negated when `ik mod 2N >= N`.
pub fn apply_coeff(a: &[u32], k: usize, m: &Modulus) -> Vec<u32> {
    let mut out = vec![0u32; a.len()];
    apply_coeff_into(a, k, m, &mut out);
    out
}

/// [`apply_coeff`] writing into a caller-provided buffer (`out` must not
/// alias `a`; every index is written exactly once because `σ_k` permutes
/// indices, so stale contents never leak through).
pub fn apply_coeff_into(a: &[u32], k: usize, m: &Modulus, out: &mut [u32]) {
    let n = a.len();
    assert!(n.is_power_of_two());
    assert_eq!(out.len(), n, "output buffer length must equal N");
    assert_valid_exponent(k, n);
    let two_n = 2 * n;
    for (i, &v) in a.iter().enumerate() {
        let j2 = (i * k) % two_n;
        if j2 < n {
            out[j2] = v;
        } else {
            out[j2 - n] = m.neg(v);
        }
    }
}

/// Applies `σ_k` to a polynomial in the NTT domain (bit-reversed order, the
/// convention of [`crate::ntt::NttTables`]).
///
/// In the evaluation domain the automorphism is a pure permutation: slot
/// `i` (holding the evaluation at `ψ^{2i+1}`) reads from slot
/// `(k(2i+1) - 1)/2 mod N`. No arithmetic is needed, which is why FHE
/// implementations keep ciphertexts in the NTT domain across automorphisms
/// (§2.3).
pub fn apply_ntt(a_hat: &[u32], k: usize) -> Vec<u32> {
    let mut out = vec![0u32; a_hat.len()];
    apply_ntt_into(a_hat, k, &mut out);
    out
}

/// [`apply_ntt`] writing into a caller-provided buffer (`out` must not
/// alias `a_hat`; every slot is written).
pub fn apply_ntt_into(a_hat: &[u32], k: usize, out: &mut [u32]) {
    let n = a_hat.len();
    assert!(n.is_power_of_two());
    assert_eq!(out.len(), n, "output buffer length must equal N");
    assert_valid_exponent(k, n);
    let log_n = n.trailing_zeros();
    let two_n = 2 * n;
    for (s, x) in out.iter_mut().enumerate() {
        let i = bit_reverse(s, log_n); // evaluation index of slot s
        let src_eval = (k * (2 * i + 1)) % two_n;
        debug_assert!(src_eval % 2 == 1);
        let j = (src_eval - 1) / 2;
        *x = a_hat[bit_reverse(j, log_n)];
    }
}

/// Applies `σ_k` in coefficient representation through the hardware
/// pipeline of Fig 6: per-chunk column permutation → transpose → per-chunk
/// row permutation with sign flips → transpose back.
///
/// `e` is the lane width (chunk size); the polynomial is processed as a
/// `G × E` matrix with `G = N / E`. Bit-exact with [`apply_coeff`].
///
/// # Panics
///
/// Panics if `e` does not divide `a.len()` or `G > E`.
pub fn apply_via_matrix(a: &[u32], k: usize, e: usize, m: &Modulus) -> Vec<u32> {
    let n = a.len();
    assert!(n.is_power_of_two() && e.is_power_of_two());
    assert!(n.is_multiple_of(e), "lane width must divide N");
    let g = n / e;
    assert!(g <= e, "automorphism unit requires G <= E");
    assert_valid_exponent(k, n);
    let two_n = 2 * n;

    // Stage 1: column permutation, identical for every chunk. Element at
    // column c moves to column c*k mod E. ("Permute column" in Fig 5/6 —
    // realized as a fixed pipeline of sub-permutations in hardware.)
    let mut stage1 = vec![vec![0u32; e]; g];
    for r in 0..g {
        for c in 0..e {
            stage1[r][(c * k) % e] = a[r * e + c];
        }
    }

    // Stage 2: transpose through the quadrant-swap unit.
    let unit = QuadrantSwapUnit::new(e);
    let t = unit.transpose_rect(&stage1);

    // Stage 3: per-chunk row permutation + sign flip. Transposed chunk c'
    // (a row of length G) sends element r to row (r*k + d) mod G, where
    // d = floor(c*k / E) mod G and c is the pre-permutation column
    // (c = c' * k^{-1} mod E). The sign of each element depends on its
    // original flat index i = r*E + c: negative iff i*k mod 2N >= N.
    let k_inv_mod_e = mod_inverse_odd(k % (2 * e), e);
    let mut stage3 = vec![vec![0u32; g]; e];
    for c_prime in 0..e {
        let c = (c_prime * k_inv_mod_e) % e;
        let d = (c * k) / e % g;
        for r in 0..g {
            let dst = (r * k + d) % g;
            let i = r * e + c;
            let val = t[c_prime][r];
            let negate = (i * k) % two_n >= n;
            stage3[c_prime][dst] = if negate { m.neg(val) } else { val };
        }
    }

    // Stage 4: transpose back and flatten.
    let back = unit_transpose_back(&stage3, g, e);
    let mut out = vec![0u32; n];
    for r in 0..g {
        for c in 0..e {
            out[r * e + c] = back[r][c];
        }
    }
    out
}

/// Transposes the `E × G` stage-3 matrix back to `G × E` using the same
/// quadrant-swap unit (run in the mirrored direction).
fn unit_transpose_back(rows: &[Vec<u32>], g: usize, e: usize) -> Vec<Vec<u32>> {
    debug_assert_eq!(rows.len(), e);
    // Pad E x G up to E x E, quadrant-swap transpose, take the top G rows.
    let unit = QuadrantSwapUnit::new(e);
    let padded: Vec<Vec<u32>> = rows
        .iter()
        .map(|r| {
            let mut row = r.clone();
            row.resize(e, 0);
            row
        })
        .collect();
    let t = unit.transpose_square(&padded);
    t.into_iter().take(g).collect()
}

/// Inverse of an odd `k` modulo a power of two `e`.
fn mod_inverse_odd(k: usize, e: usize) -> usize {
    debug_assert!(e.is_power_of_two());
    debug_assert!(k % 2 == 1);
    // Newton–Hensel on the 2-adics, enough iterations for e <= 2^64.
    let mut x = k; // 3-bit correct
    for _ in 0..6 {
        x = x.wrapping_mul(2usize.wrapping_sub(k.wrapping_mul(x)));
    }
    x & (e - 1)
}

/// The exponent used to homomorphically rotate packed slots by `amount`
/// positions: `k = 3^amount mod 2N` (the standard BGV/CKKS convention where
/// 3 generates the slot-rotation subgroup of `(Z/2N)^*`).
pub fn rotation_exponent(amount: usize, n: usize) -> usize {
    let two_n = 2 * n as u64;
    let mut k = 1u64;
    for _ in 0..amount {
        k = (k * 3) % two_n;
    }
    k as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntt::NttTables;
    use f1_modarith::primes;
    use rand::{Rng, SeedableRng};

    fn modulus(n: usize) -> Modulus {
        Modulus::new(primes::ntt_friendly_primes(n, 30, 1)[0])
    }

    #[test]
    fn sigma_1_is_identity() {
        let m = modulus(64);
        let a: Vec<u32> = (0..64).collect();
        assert_eq!(apply_coeff(&a, 1, &m), a);
        assert_eq!(apply_ntt(&a, 1), a);
    }

    #[test]
    fn composition_of_automorphisms() {
        // σ_j ∘ σ_k = σ_{jk mod 2N}.
        let n = 128;
        let m = modulus(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let a: Vec<u32> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
        let (j, k) = (5usize, 11usize);
        let lhs = apply_coeff(&apply_coeff(&a, k, &m), j, &m);
        let rhs = apply_coeff(&a, (j * k) % (2 * n), &m);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn inverse_automorphism_roundtrip() {
        // σ_k ∘ σ_{k^{-1} mod 2N} = identity.
        let n = 256;
        let m = modulus(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let a: Vec<u32> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
        let k = 77usize;
        // Find k^{-1} mod 2N by brute force (test-only).
        let k_inv = (1..2 * n).step_by(2).find(|&x| (x * k) % (2 * n) == 1).unwrap();
        assert_eq!(apply_coeff(&apply_coeff(&a, k, &m), k_inv, &m), a);
    }

    #[test]
    fn ntt_domain_commutes_with_coeff_domain() {
        // NTT(σ_k(a)) == σ̂_k(NTT(a)) — the paper's §2.3 identity.
        let n = 512;
        let m = modulus(n);
        let tables = NttTables::new(n, m);
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let a: Vec<u32> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
        for k in [3usize, 5, 9, 2 * n - 1, n + 1] {
            let mut lhs = apply_coeff(&a, k, &m);
            tables.forward(&mut lhs);
            let mut a_hat = a.clone();
            tables.forward(&mut a_hat);
            let rhs = apply_ntt(&a_hat, k);
            assert_eq!(lhs, rhs, "k={k}");
        }
    }

    #[test]
    fn matrix_pipeline_matches_direct() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(24);
        for (n, e) in [(16usize, 4usize), (64, 8), (1024, 32), (4096, 128)] {
            let m = modulus(n);
            let a: Vec<u32> = (0..n).map(|_| rng.gen_range(0..m.value())).collect();
            for k in [3usize, 5, n - 1, n + 3, 2 * n - 1] {
                let want = apply_coeff(&a, k, &m);
                let got = apply_via_matrix(&a, k, e, &m);
                assert_eq!(got, want, "n={n}, e={e}, k={k}");
            }
        }
    }

    #[test]
    fn figure5_example_sigma3_n16_e4() {
        // The worked example of Fig 5: σ_3 on N=16, E=4. Signs aside, index
        // i must land at 3i mod 16.
        let n = 16;
        let m = modulus(n);
        let a: Vec<u32> = (1..=16).collect(); // distinct markers
        let out = apply_via_matrix(&a, 3, 4, &m);
        for i in 0..n {
            let j = (3 * i) % n;
            let expect = if (3 * i) % (2 * n) < n { a[i] } else { m.neg(a[i]) };
            assert_eq!(out[j], expect, "element {i}");
        }
    }

    #[test]
    fn rotation_exponents_are_valid() {
        let n = 1024;
        for r in 0..10 {
            let k = rotation_exponent(r, n);
            assert_valid_exponent(k.max(1), n);
        }
        assert_eq!(rotation_exponent(0, n), 1);
        assert_eq!(rotation_exponent(1, n), 3);
        assert_eq!(rotation_exponent(2, n), 9);
    }

    #[test]
    fn all_n_automorphisms_are_permutations() {
        // Every odd k < 2N induces a bijection on indices (magnitude-wise).
        let n = 64;
        let m = modulus(n);
        let a: Vec<u32> = (1..=n as u32).collect();
        for k in (1..2 * n).step_by(2) {
            let out = apply_coeff(&a, k, &m);
            let mut seen: Vec<u32> =
                out.iter().map(|&v| if v > m.value() / 2 { m.neg(v) } else { v }).collect();
            seen.sort_unstable();
            let want: Vec<u32> = (1..=n as u32).collect();
            assert_eq!(seen, want, "k={k} must permute all magnitudes");
        }
    }
}
