//! # f1-poly — polynomial substrate for the F1 reproduction
//!
//! FHE ciphertexts are pairs of polynomials in `R_Q = Z_Q[X]/(X^N + 1)`,
//! stored in RNS form as `L` residue polynomials with 32-bit coefficients
//! (paper §2.2–2.3). This crate implements the data types and the three
//! non-trivial kernels F1 builds functional units for:
//!
//! * [`ntt`] — negacyclic NTTs (merged-ψ Cooley–Tukey forward, Gentleman–
//!   Sande inverse) over each RNS limb.
//! * [`four_step`] — the four-step NTT decomposition that F1's NTT unit
//!   implements in hardware (§5.2): two passes of `E`-point NTTs around a
//!   twiddle multiplication and a transpose.
//! * [`automorphism`] — Galois automorphisms `σ_k` in both coefficient and
//!   NTT domains, plus the column-permute / transpose / row-permute
//!   decomposition of §5.1 (Fig 5) that makes them vectorizable.
//! * [`transpose`] — the quadrant-swap transpose unit of Fig 7, modeled
//!   operationally (the same unit serves the NTT and automorphism FUs).
//! * [`rns`] — RNS contexts and [`rns::RnsPoly`], the `RVec`-of-limbs type
//!   every F1 instruction operates on (flat limb-major storage, in-place
//!   operators).
//! * [`par`] — scoped-thread limb parallelism for the RNS hot loops.
//! * [`crt`] — CRT reconstruction of wide coefficients (client-side only).
//! * [`mod@env`] — strict parsing for the workspace's environment knobs
//!   (`F1_SCALE` and friends): malformed values panic, never silently
//!   fall back.
//!
//! # Example
//!
//! ```
//! use f1_poly::rns::{RnsContext, RnsPoly};
//!
//! let ctx = RnsContext::for_ring(1024, 30, 3); // N=1024, three 30-bit primes
//! let a = RnsPoly::random(&ctx, &mut rand::thread_rng());
//! let b = RnsPoly::random(&ctx, &mut rand::thread_rng());
//! // Multiplication is element-wise in the NTT domain (paper §2.3).
//! let prod = a.to_ntt().mul(&b.to_ntt());
//! assert_eq!(prod, b.to_ntt().mul(&a.to_ntt()));
//! ```

#![forbid(unsafe_code)]
// Index loops intentionally mirror the per-element/NTT/transpose kernels structure of the
// hardware they model; iterator rewrites obscure that correspondence.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod automorphism;
pub mod crt;
pub mod env;
pub mod four_step;
pub mod ntt;
pub mod par;
pub mod rns;
pub mod transpose;

pub use rns::{Domain, ResiduePoly, RnsContext, RnsPoly};

/// Supported ring dimensions: powers of two from 1K to 16K (paper §3).
pub const MIN_LOG_N: u32 = 10;
/// Maximum supported `log2 N`.
pub const MAX_LOG_N: u32 = 14;

/// Validates that `n` is a supported ring dimension.
///
/// # Panics
///
/// Panics if `n` is not a power of two in `[2^10, 2^14]`. Tests may use
/// smaller rings via the unchecked constructors.
pub fn assert_supported_ring(n: usize) {
    assert!(n.is_power_of_two(), "ring dimension must be a power of two, got {n}");
    assert!(
        (MIN_LOG_N..=MAX_LOG_N).contains(&(n.trailing_zeros())),
        "ring dimension {n} outside supported range 2^{MIN_LOG_N}..2^{MAX_LOG_N}"
    );
}
