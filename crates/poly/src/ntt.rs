//! Negacyclic number-theoretic transforms (§2.3, §5.2).
//!
//! Polynomial multiplication in `Z_q[X]/(X^N + 1)` becomes element-wise
//! multiplication under the *negacyclic* NTT, which evaluates a polynomial
//! at the odd powers of a primitive `2N`-th root of unity `ψ`. We use the
//! standard merged-twist formulation: the forward transform is a
//! decimation-in-time Cooley–Tukey butterfly network with ψ-powers merged
//! into the twiddles, the inverse a decimation-in-frequency Gentleman–Sande
//! network with ψ^{-1}-powers merged (Lyubashevsky et al. \[49\], Pöppelmann
//! et al. \[62\], Roy et al. \[67\] — the same lineage the paper cites).
//!
//! Two implementations share the twiddle tables:
//!
//! * [`NttTables::forward_reference`] / [`NttTables::inverse_reference`] —
//!   the strict transforms, every intermediate canonical (`< q`). These are
//!   the retained bit-exact oracles.
//! * [`NttTables::forward`] / [`NttTables::inverse`] — Harvey lazy-reduction
//!   butterflies: residues are carried in `[0, 2q)` with transient values in
//!   `[0, 4q)`, twiddle products use the lazy Shoup multiply
//!   ([`ShoupMul::mul_lazy`], result in `[0, 2q)`), and a single correction
//!   pass at the end restores canonical residues. Requires `q < 2^30` so
//!   `4q` fits a `u32` (every paper modulus is ≤ 30 bits); wider moduli fall
//!   back to the reference kernels. Outputs are bit-identical to the
//!   reference transforms.
//!
//! The hardware-shaped four-step pipeline of [`crate::four_step`] is
//! validated against the same reference transforms.

use f1_modarith::mul::ShoupMul;
use f1_modarith::Modulus;

/// Largest modulus the lazy kernels accept: `q < 2^30` keeps `4q - 1`
/// representable in a `u32`.
const LAZY_Q_MAX: u32 = 1 << 30;

/// Precomputed twiddle tables for size-`n` negacyclic NTTs modulo one prime.
///
/// Construction is `O(n)` space and is meant to be shared: clone the
/// [`std::sync::Arc`] that [`crate::rns::RnsContext`] wraps around it.
#[derive(Debug, Clone)]
pub struct NttTables {
    n: usize,
    modulus: Modulus,
    /// ψ^bitrev(i) in Shoup form, for the forward DIT butterflies.
    fwd_twiddles: Vec<ShoupMul>,
    /// ψ^{-bitrev(i)} in Shoup form, for the inverse DIF butterflies.
    inv_twiddles: Vec<ShoupMul>,
    /// `n^{-1} mod q` in Shoup form, applied at the end of the inverse NTT.
    n_inv: ShoupMul,
    /// ψ (primitive 2n-th root of unity).
    psi: u32,
}

impl NttTables {
    /// Builds tables for ring dimension `n` (a power of two) modulo `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q ≢ 1 (mod 2n)` (no primitive `2n`-th root exists) or if
    /// `n` is not a power of two.
    pub fn new(n: usize, modulus: Modulus) -> Self {
        assert!(n.is_power_of_two(), "NTT size must be a power of two");
        assert!(modulus.supports_ntt(n), "q = {} is not NTT-friendly for n = {n}", modulus.value());
        let psi = modulus.primitive_root_of_unity(2 * n as u64);
        let psi_inv = modulus.inv(psi);
        let log_n = n.trailing_zeros();
        let mut fwd = Vec::with_capacity(n);
        let mut inv = Vec::with_capacity(n);
        let mut pow_f: u32 = 1;
        let mut pow_i: u32 = 1;
        // Tables store psi^i indexed by bit-reversed position, the classic
        // layout that lets both loops below walk the table linearly.
        let mut fwd_nat = vec![0u32; n];
        let mut inv_nat = vec![0u32; n];
        for i in 0..n {
            fwd_nat[i] = pow_f;
            inv_nat[i] = pow_i;
            pow_f = modulus.mul(pow_f, psi);
            pow_i = modulus.mul(pow_i, psi_inv);
        }
        for i in 0..n {
            let r = bit_reverse(i, log_n);
            fwd.push(ShoupMul::new(fwd_nat[r], &modulus));
            inv.push(ShoupMul::new(inv_nat[r], &modulus));
        }
        let n_inv_val = modulus.inv(n as u32 % modulus.value());
        Self {
            n,
            modulus,
            fwd_twiddles: fwd,
            inv_twiddles: inv,
            n_inv: ShoupMul::new(n_inv_val, &modulus),
            psi,
        }
    }

    /// The ring dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The modulus these tables were built for.
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// The primitive `2n`-th root of unity used by the tables.
    pub fn psi(&self) -> u32 {
        self.psi
    }

    /// In-place forward negacyclic NTT (coefficient → NTT domain).
    ///
    /// Dispatches to the Harvey lazy-reduction kernel when the modulus
    /// leaves `4q` headroom in a `u32` (`q < 2^30`, true for every paper
    /// modulus) and to [`NttTables::forward_reference`] otherwise. Both
    /// paths produce identical canonical outputs.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward(&self, a: &mut [u32]) {
        if self.modulus.value() < LAZY_Q_MAX {
            self.forward_lazy(a);
        } else {
            self.forward_reference(a);
        }
    }

    /// In-place inverse negacyclic NTT (NTT → coefficient domain).
    ///
    /// Dispatches to the lazy Gentleman–Sande kernel when `q < 2^30`, else
    /// to [`NttTables::inverse_reference`]. Both paths produce identical
    /// canonical outputs.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse(&self, a: &mut [u32]) {
        if self.modulus.value() < LAZY_Q_MAX {
            self.inverse_lazy(a);
        } else {
            self.inverse_reference(a);
        }
    }

    /// Forward NTT with Harvey lazy reduction (requires `q < 2^30`).
    ///
    /// Invariant: at each stage every lane holds a representative in
    /// `[0, 4q)`. The x-lane is folded into `[0, 2q)` by one conditional
    /// subtract, the twiddle product `v = w * y` comes out of
    /// [`ShoupMul::mul_lazy`] in `[0, 2q)` for *any* `u32` input, and the
    /// butterfly writes `x + v < 4q` and `x + 2q - v < 4q`. A final pass of
    /// two conditional subtracts restores canonical residues — bit-exact
    /// with [`NttTables::forward_reference`].
    fn forward_lazy(&self, a: &mut [u32]) {
        assert_eq!(a.len(), self.n, "input length must equal ring dimension");
        let q = self.modulus.value();
        let two_q = 2 * q;
        let mut t = self.n / 2;
        let mut m = 1usize;
        while m < self.n {
            for (i, chunk) in a.chunks_exact_mut(2 * t).enumerate() {
                let w = &self.fwd_twiddles[m + i];
                let (lo, hi) = chunk.split_at_mut(t);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    let mut u = *x;
                    if u >= two_q {
                        u -= two_q;
                    }
                    let v = w.mul_lazy(*y, q);
                    *x = u + v;
                    *y = u + two_q - v;
                }
            }
            m *= 2;
            t /= 2;
        }
        for x in a.iter_mut() {
            let mut r = *x;
            if r >= two_q {
                r -= two_q;
            }
            if r >= q {
                r -= q;
            }
            *x = r;
        }
    }

    /// Inverse NTT with lazy reduction (requires `q < 2^30`).
    ///
    /// Invariant: every lane stays in `[0, 2q)` across stages (the sum is
    /// folded by one conditional subtract; the difference `x + 2q - y < 4q`
    /// feeds the lazy Shoup multiply, which lands back in `[0, 2q)`). The
    /// final `n^{-1}` scaling pass uses the fully-reduced Shoup multiply, so
    /// outputs are canonical and bit-exact with
    /// [`NttTables::inverse_reference`].
    fn inverse_lazy(&self, a: &mut [u32]) {
        assert_eq!(a.len(), self.n, "input length must equal ring dimension");
        let q = self.modulus.value();
        let two_q = 2 * q;
        let mut t = 1usize;
        let mut m = self.n / 2;
        while m >= 1 {
            for (i, chunk) in a.chunks_exact_mut(2 * t).enumerate() {
                let w = &self.inv_twiddles[m + i];
                let (lo, hi) = chunk.split_at_mut(t);
                for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                    let u = *x;
                    let v = *y;
                    let mut s = u + v;
                    if s >= two_q {
                        s -= two_q;
                    }
                    *x = s;
                    *y = w.mul_lazy(u + two_q - v, q);
                }
            }
            m /= 2;
            t *= 2;
        }
        for x in a.iter_mut() {
            *x = self.n_inv.mul(*x, q);
        }
    }

    /// The strict forward transform: the retained bit-exact oracle.
    ///
    /// Uses the merged-ψ DIT Cooley–Tukey network with every intermediate
    /// kept canonical — the dataflow F1's NTT FU pipelines (§5.2). Works for
    /// any supported modulus (`q < 2^31`).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn forward_reference(&self, a: &mut [u32]) {
        assert_eq!(a.len(), self.n, "input length must equal ring dimension");
        let q = self.modulus.value();
        let mut t = self.n / 2;
        let mut m = 1usize;
        while m < self.n {
            for i in 0..m {
                let w = &self.fwd_twiddles[m + i];
                let base = 2 * i * t;
                for j in base..base + t {
                    // CT butterfly: (x, y) -> (x + w*y, x - w*y)
                    let u = a[j];
                    let v = w.mul(a[j + t], q);
                    a[j] = self.modulus.add(u, v);
                    a[j + t] = self.modulus.sub(u, v);
                }
            }
            m *= 2;
            t /= 2;
        }
    }

    /// The strict inverse transform: the retained bit-exact oracle.
    ///
    /// Uses the merged-ψ^{-1} DIF Gentleman–Sande network followed by the
    /// `n^{-1}` scaling, every intermediate canonical.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != n`.
    pub fn inverse_reference(&self, a: &mut [u32]) {
        assert_eq!(a.len(), self.n, "input length must equal ring dimension");
        let q = self.modulus.value();
        let mut t = 1usize;
        let mut m = self.n / 2;
        while m >= 1 {
            for i in 0..m {
                let w = &self.inv_twiddles[m + i];
                let base = 2 * i * t;
                for j in base..base + t {
                    // GS butterfly: (x, y) -> (x + y, w*(x - y))
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = self.modulus.add(u, v);
                    a[j + t] = w.mul(self.modulus.sub(u, v), q);
                }
            }
            m /= 2;
            t *= 2;
        }
        for x in a.iter_mut() {
            *x = self.n_inv.mul(*x, q);
        }
    }

    /// Negacyclic convolution of `a` and `b` via NTT, for reference tests.
    pub fn negacyclic_mul(&self, a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward(&mut fa);
        self.forward(&mut fb);
        f1_modarith::slice_ops::mul_slice(&self.modulus, &mut fa, &fb);
        self.inverse(&mut fa);
        fa
    }
}

/// Reverses the low `bits` bits of `i`.
pub fn bit_reverse(i: usize, bits: u32) -> usize {
    i.reverse_bits() >> (usize::BITS - bits)
}

/// Schoolbook negacyclic multiplication, the `O(n^2)` oracle for tests.
pub fn negacyclic_mul_schoolbook(a: &[u32], b: &[u32], m: &Modulus) -> Vec<u32> {
    let n = a.len();
    assert_eq!(b.len(), n);
    let mut out = vec![0u32; n];
    for i in 0..n {
        if a[i] == 0 {
            continue;
        }
        for j in 0..n {
            let p = m.mul(a[i], b[j]);
            let k = i + j;
            if k < n {
                out[k] = m.add(out[k], p);
            } else {
                // X^n = -1: wraparound with sign flip.
                out[k - n] = m.sub(out[k - n], p);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use f1_modarith::primes;
    use rand::{Rng, SeedableRng};

    fn tables(n: usize) -> NttTables {
        let q = primes::ntt_friendly_primes(n, 30, 1)[0];
        NttTables::new(n, Modulus::new(q))
    }

    fn random_poly(n: usize, q: u32, rng: &mut impl Rng) -> Vec<u32> {
        (0..n).map(|_| rng.gen_range(0..q)).collect()
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for log_n in [3u32, 6, 10, 12] {
            let n = 1usize << log_n;
            let t = tables(n);
            let a = random_poly(n, t.modulus().value(), &mut rng);
            let mut b = a.clone();
            t.forward(&mut b);
            assert_ne!(a, b, "forward must not be the identity");
            t.inverse(&mut b);
            assert_eq!(a, b, "inverse(forward(a)) == a for n={n}");
        }
    }

    #[test]
    fn ntt_of_constant_is_constant_vector() {
        // The polynomial c (degree 0) evaluates to c at every point.
        let n = 64;
        let t = tables(n);
        let mut a = vec![0u32; n];
        a[0] = 12345;
        t.forward(&mut a);
        assert!(a.iter().all(|&x| x == 12345));
    }

    #[test]
    fn ntt_matches_schoolbook_multiplication() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for n in [8usize, 32, 256] {
            let t = tables(n);
            let q = t.modulus().value();
            let a = random_poly(n, q, &mut rng);
            let b = random_poly(n, q, &mut rng);
            let want = negacyclic_mul_schoolbook(&a, &b, t.modulus());
            let got = t.negacyclic_mul(&a, &b);
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // (X^{n-1}) * X = X^n = -1.
        let n = 16;
        let t = tables(n);
        let q = t.modulus().value();
        let mut a = vec![0u32; n];
        let mut b = vec![0u32; n];
        a[n - 1] = 1;
        b[1] = 1;
        let prod = t.negacyclic_mul(&a, &b);
        let mut want = vec![0u32; n];
        want[0] = q - 1; // -1 mod q
        assert_eq!(prod, want);
    }

    #[test]
    fn linearity_of_ntt() {
        let n = 128;
        let t = tables(n);
        let q = t.modulus().value();
        let m = *t.modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = random_poly(n, q, &mut rng);
        let b = random_poly(n, q, &mut rng);
        let sum: Vec<u32> = a.iter().zip(&b).map(|(&x, &y)| m.add(x, y)).collect();
        let mut fa = a;
        let mut fb = b;
        let mut fsum = sum;
        t.forward(&mut fa);
        t.forward(&mut fb);
        t.forward(&mut fsum);
        let fadd: Vec<u32> = fa.iter().zip(&fb).map(|(&x, &y)| m.add(x, y)).collect();
        assert_eq!(fsum, fadd, "NTT(a+b) == NTT(a) + NTT(b)");
    }

    #[test]
    fn ntt_is_evaluation_at_odd_psi_powers() {
        // Pin the domain convention: forward NTT output in bit-reversed
        // order corresponds to evaluations at psi^{2*bitrev(i)+1}. We verify
        // through direct evaluation on a small ring.
        let n = 8usize;
        let t = tables(n);
        let m = *t.modulus();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = random_poly(n, m.value(), &mut rng);
        let mut f = a.clone();
        t.forward(&mut f);
        let log_n = n.trailing_zeros();
        for i in 0..n {
            let exp = 2 * bit_reverse(i, log_n) as u64 + 1;
            let point = m.pow(t.psi(), exp);
            let mut val = 0u32;
            let mut x_pow = 1u32;
            for &c in &a {
                val = m.add(val, m.mul(c, x_pow));
                x_pow = m.mul(x_pow, point);
            }
            assert_eq!(f[i], val, "evaluation mismatch at slot {i}");
        }
    }

    #[test]
    fn lazy_kernels_are_bit_exact_with_reference() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for log_n in [4u32, 8, 11] {
            let n = 1usize << log_n;
            let t = tables(n);
            let q = t.modulus().value();
            assert!(q < 1 << 30, "paper moduli take the lazy path");
            let a = random_poly(n, q, &mut rng);
            let mut lazy = a.clone();
            let mut strict = a.clone();
            t.forward(&mut lazy);
            t.forward_reference(&mut strict);
            assert_eq!(lazy, strict, "forward n={n}");
            t.inverse(&mut lazy);
            t.inverse_reference(&mut strict);
            assert_eq!(lazy, strict, "inverse n={n}");
            assert_eq!(lazy, a, "roundtrip n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "not NTT-friendly")]
    fn rejects_unfriendly_modulus() {
        // 999983 is prime but 999982 = 2 * 499991 lacks 2^11 as a factor.
        NttTables::new(1024, Modulus::new(999_983));
    }
}
