//! CRT reconstruction of wide coefficients from RNS limbs.
//!
//! Only the client side of the FHE protocol (decryption, noise
//! measurement) ever reconstructs wide integers; the accelerator stays in
//! RNS end to end (§2.3). Reconstruction follows the classic formula
//! `x = Σ_i (x_i * (Q/q_i)^{-1} mod q_i) * (Q/q_i)  (mod Q)`, then lifts to
//! the centered representative in `(-Q/2, Q/2]`.

use crate::rns::{CrtLevel, Domain, RnsPoly};
use f1_modarith::UBig;

/// A signed wide integer: `(negative, magnitude)`.
pub type CenteredBig = (bool, UBig);

/// Reconstructs coefficient `idx` of `p` as a centered wide integer.
///
/// Crate-internal workhorse shared with basis extension.
pub(crate) fn reconstruct_centered_coeff(p: &RnsPoly, idx: usize, lvl: &CrtLevel) -> CenteredBig {
    let mut acc = UBig::zero();
    for i in 0..p.level() {
        let m = p.context().modulus(i);
        let scaled = m.mul(p.limb(i)[idx], lvl.q_over_qi_inv[i]);
        acc = acc.add(&lvl.q_over_qi[i].mul_u64(scaled as u64));
    }
    // acc < L * Q; reduce mod Q then center.
    let reduced = acc.rem(&lvl.q_big);
    if reduced > lvl.q_half {
        (true, lvl.q_big.sub(&reduced))
    } else {
        (false, reduced)
    }
}

/// Reconstructs every coefficient of `p` as a centered wide integer.
///
/// # Panics
///
/// Panics if `p` is in NTT representation.
pub fn reconstruct_centered(p: &RnsPoly) -> Vec<CenteredBig> {
    assert_eq!(p.domain(), Domain::Coefficient, "reconstruct requires coefficient domain");
    let lvl = p.context().crt_level(p.level());
    (0..p.n()).map(|c| reconstruct_centered_coeff(p, c, lvl)).collect()
}

/// Reduces a centered wide integer modulo a small `t`, returning a value in
/// `[0, t)` — the plaintext-recovery step of BGV decryption (§2.2).
pub fn centered_mod_small(x: &CenteredBig, t: u64) -> u64 {
    let r = x.1.rem_u64(t);
    if x.0 && r != 0 {
        t - r
    } else {
        r
    }
}

/// The infinity norm (largest coefficient magnitude) of `p`, as a base-2
/// logarithm. This is the noise-magnitude measurement used to validate the
/// paper's noise-budget reasoning (§2.2.2).
pub fn log2_infinity_norm(p: &RnsPoly) -> f64 {
    reconstruct_centered(p).iter().map(|(_, mag)| mag.log2()).fold(f64::NEG_INFINITY, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rns::RnsContext;

    #[test]
    fn small_values_reconstruct_exactly() {
        let ctx = RnsContext::for_ring(64, 30, 3);
        let coeffs: Vec<i64> = (0..64).map(|i| i as i64 - 32).collect();
        let p = RnsPoly::from_signed_coeffs(&ctx, 3, &coeffs);
        let rec = reconstruct_centered(&p);
        for (got, &want) in rec.iter().zip(&coeffs) {
            let mag = got.1.to_u64().unwrap() as i64;
            let val = if got.0 { -mag } else { mag };
            assert_eq!(val, want);
        }
    }

    #[test]
    fn wide_value_reconstructs() {
        // Value larger than any single modulus: v = q_0 + 5 must come back
        // exactly via CRT even though limb 0 only sees 5.
        let ctx = RnsContext::for_ring(64, 30, 2);
        let v = ctx.modulus(0).value() as u64 + 5;
        let coeffs = vec![v; 64];
        let p = RnsPoly::from_u64_coeffs(&ctx, 2, &coeffs);
        let rec = reconstruct_centered(&p);
        assert!(!rec[0].0);
        assert_eq!(rec[0].1.to_u64(), Some(v));
    }

    #[test]
    fn mod_small_handles_negatives() {
        let x_pos: CenteredBig = (false, UBig::from_u64(17));
        let x_neg: CenteredBig = (true, UBig::from_u64(17));
        assert_eq!(centered_mod_small(&x_pos, 5), 2);
        assert_eq!(centered_mod_small(&x_neg, 5), 3); // -17 ≡ 3 (mod 5)
        let zero: CenteredBig = (true, UBig::zero());
        assert_eq!(centered_mod_small(&zero, 5), 0);
    }

    #[test]
    fn infinity_norm_tracks_magnitude() {
        let ctx = RnsContext::for_ring(64, 30, 3);
        let mut coeffs = vec![0i64; 64];
        coeffs[7] = 1 << 20;
        let p = RnsPoly::from_signed_coeffs(&ctx, 3, &coeffs);
        let l = log2_infinity_norm(&p);
        assert!((l - 20.0).abs() < 1e-9, "log2 norm = {l}");
    }

    #[test]
    fn negative_of_q_half_boundary() {
        // Exactly -(Q-1)/2 style values must center correctly.
        let ctx = RnsContext::for_ring(16, 30, 2);
        let p = RnsPoly::from_signed_coeffs(&ctx, 2, &[-1i64; 16]);
        let rec = reconstruct_centered(&p);
        for (neg, mag) in rec {
            assert!(neg);
            assert_eq!(mag.to_u64(), Some(1));
        }
    }
}
