//! Environment-variable knob parsing shared across the workspace
//! (`F1_SCALE`, `F1_BASELINE_REPS`, `F1_PAR_LIMBS`, …).
//!
//! The knobs used to be read with `.parse().ok().unwrap_or(default)`,
//! which silently swallowed typos: `F1_SCALE=ful` ran the reduced suite
//! while claiming full size. A malformed value is operator error and
//! panics here with the variable name and the offending text; only an
//! *absent* variable falls back to the default.

use std::fmt::Display;
use std::str::FromStr;

/// Parses an already-read value (`None` = variable absent). Split from
/// [`parse_env_or`] so tests can exercise the policy without mutating
/// process-global environment state.
pub fn parse_env_value<T>(var: &str, value: Option<&str>, default: T) -> T
where
    T: FromStr,
    T::Err: Display,
{
    match value {
        None => default,
        Some(s) => match s.parse() {
            Ok(v) => v,
            Err(e) => panic!("{var}={s:?} is not a valid value: {e}"),
        },
    }
}

/// Reads and parses the environment variable `var`, falling back to
/// `default` only when it is unset.
///
/// # Panics
///
/// Panics when the variable is set but malformed (including non-unicode
/// content) — a misspelled knob must not silently run with the default.
pub fn parse_env_or<T>(var: &str, default: T) -> T
where
    T: FromStr,
    T::Err: Display,
{
    match std::env::var(var) {
        Ok(s) => parse_env_value(var, Some(&s), default),
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(_)) => {
            panic!("{var} holds non-unicode content")
        }
    }
}

/// [`parse_env_or`] for counts that must be ≥ 1 (scales, repetition
/// counts): `0` is rejected as malformed rather than clamped.
///
/// # Panics
///
/// Panics when the variable is set but malformed or zero.
pub fn parse_env_nonzero_or(var: &str, default: usize) -> usize {
    let v = parse_env_or(var, default);
    assert!(v >= 1, "{var}=0 is not a valid value: must be >= 1");
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_variable_falls_back() {
        assert_eq!(parse_env_value("F1_TEST", None, 8usize), 8);
    }

    #[test]
    fn present_value_overrides() {
        assert_eq!(parse_env_value("F1_TEST", Some("3"), 8usize), 3);
        assert_eq!(parse_env_value("F1_TEST", Some("0"), 8usize), 0);
    }

    #[test]
    #[should_panic(expected = "F1_TEST=\"ful\" is not a valid value")]
    fn malformed_value_panics() {
        parse_env_value("F1_TEST", Some("ful"), 8usize);
    }

    #[test]
    #[should_panic(expected = "not a valid value")]
    fn empty_value_panics() {
        parse_env_value("F1_TEST", Some(""), 8usize);
    }

    #[test]
    #[should_panic(expected = "not a valid value")]
    fn negative_count_panics() {
        parse_env_value("F1_TEST", Some("-2"), 8usize);
    }

    #[test]
    fn unset_nonzero_keeps_default() {
        // The variable is never set in the test environment.
        assert_eq!(parse_env_nonzero_or("F1_ENV_TEST_UNSET_KNOB", 2), 2);
    }
}
