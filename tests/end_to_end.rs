//! Cross-crate integration tests: the full pipeline from DSL program to
//! validated cycle-accurate schedule, cross-checked against functional
//! execution on the real FHE implementation.

use f1::arch::ArchConfig;
use f1::compiler::dsl::CtId;
use f1::compiler::{ExpandOptions, Program};
use f1::fhe::encoding::SlotEncoder;
use f1::fhe::params::BgvParams;
use f1::sim::BgvExecutor;
use rand::SeedableRng;
use std::collections::HashMap;

#[test]
fn compile_simulate_and_verify_matvec() {
    // One program, two worlds: (a) compiled and cycle-simulated for F1,
    // (b) functionally executed on real BGV; both must succeed, and the
    // functional result must be numerically correct.
    let n_hw = 1 << 13;
    let p_hw = Program::listing2_matvec(n_hw, 8, 4);
    let arch = ArchConfig::f1_default();
    let (ex, plan, cycles) = f1::compiler_compile(&p_hw, &arch);
    let report = f1::sim::check_schedule(&ex, &plan, &cycles, &arch);
    assert!(report.makespan > 0);
    assert!(report.traffic.compulsory() > 0);
    assert!(report.seconds < 1.0, "a 4-row matvec must run far under a second");

    let n_sw = 64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let params = BgvParams::test_small(n_sw, 4);
    let enc = SlotEncoder::new(&params);
    let mut p = Program::new(n_sw);
    let row = p.input(4);
    let v = p.input(4);
    let prod = p.mul(row, v);
    let sum = p.inner_sum(prod, n_sw / 2);
    p.output(sum);
    let exec = BgvExecutor::new(params.clone(), &p, &mut rng);
    let row_data: Vec<u64> = (0..n_sw / 2).map(|j| (j % 5) as u64).collect();
    let vec_data: Vec<u64> = (0..n_sw / 2).map(|j| (j % 3) as u64).collect();
    let mut inputs = HashMap::new();
    inputs.insert(row, enc.encode(&[row_data.clone(), row_data.clone()], &params));
    inputs.insert(v, enc.encode(&[vec_data.clone(), vec_data.clone()], &params));
    let run = exec.run(&p, &inputs, &HashMap::new(), &mut rng);
    let want: u64 = row_data.iter().zip(&vec_data).map(|(&a, &b)| a * b).sum::<u64>()
        % params.plaintext_modulus;
    assert_eq!(enc.decode(&run.outputs[0])[0][0], want);
}

#[test]
fn every_benchmark_compiles_validates_and_is_memory_sane() {
    let arch = ArchConfig::f1_default();
    for b in f1::workloads::all_benchmarks(16) {
        let (ex, plan, cycles) = f1::compiler_compile(&b.program, &arch);
        let report = f1::sim::check_schedule(&ex, &plan, &cycles, &arch);
        // Traffic can never be below the compulsory bound.
        assert!(report.traffic.total() >= report.traffic.compulsory(), "{}", b.name);
        // The schedule must beat a fully serialized execution.
        let serial: u64 =
            ex.dfg.instrs().iter().map(|i| arch.occupancy(i.op.fu_type(), ex.dfg.n)).sum();
        assert!(
            report.makespan < serial,
            "{}: makespan {} not better than serial {serial}",
            b.name,
            report.makespan
        );
    }
}

#[test]
fn ghs_and_decomposition_schedules_both_validate() {
    let arch = ArchConfig::f1_default();
    let mut p = Program::new(1 << 12);
    let x = p.input(8);
    let y = p.input(8);
    let m = p.mul(x, y);
    let r = p.aut(m, 3);
    p.output(r);
    for choice in [f1::compiler::KeySwitchChoice::Decomposition, f1::compiler::KeySwitchChoice::Ghs]
    {
        let opts = ExpandOptions { keyswitch: choice, ..Default::default() };
        let ex = f1::compiler::expand::expand(&p, &opts);
        let plan = f1::compiler::movement::schedule(&ex, &arch);
        let cycles = f1::compiler::cycle::schedule(&ex, &plan, &arch);
        let report = f1::sim::check_schedule(&ex, &plan, &cycles, &arch);
        assert!(report.makespan > 0, "{choice:?}");
    }
}

#[test]
fn hint_reuse_beats_program_order_on_traffic() {
    // The §4.2 motivating claim, end to end: reuse-ordered compilation
    // must move no more hint bytes than program-order compilation on a
    // capacity-constrained scratchpad.
    let p = Program::listing2_matvec(1 << 13, 8, 4);
    let mut arch = ArchConfig::f1_default();
    arch.scratchpad_banks = 4; // 16 MB: each hint is 4 MB, 13 hints don't fit
    let reuse = {
        let ex = f1::compiler::expand::expand(&p, &ExpandOptions::default());
        f1::compiler::movement::schedule(&ex, &arch).traffic.total()
    };
    let program_order = {
        let opts = ExpandOptions { keep_program_order: true, ..Default::default() };
        let ex = f1::compiler::expand::expand(&p, &opts);
        f1::compiler::movement::schedule(&ex, &arch).traffic.total()
    };
    assert!(
        reuse <= program_order,
        "hint-reuse {reuse} must not exceed program-order {program_order}"
    );
}

#[test]
fn listing2_hom_op_counts() {
    let p = Program::listing2_matvec(1 << 14, 16, 4);
    // 15 hint groups: 1 relin + 14 rotations (log2 16K); §4.2's "480 MB"
    // example counts 15 hint sets of Listing 1's decomposition variant
    // (pinned explicitly — the Auto cost model switches this very
    // program to GHS precisely because of that footprint).
    let opts = ExpandOptions {
        keyswitch: f1::compiler::KeySwitchChoice::Decomposition,
        ..Default::default()
    };
    let ex = f1::compiler::expand::expand(&p, &opts);
    assert_eq!(ex.hint_values.len(), 15);
    let hint_bytes: u64 =
        ex.hint_values.values().flat_map(|vals| vals.iter().map(|&v| ex.dfg.value(v).bytes)).sum();
    // 15 hints × 32 MB = 480 MB, exceeding on-chip storage — the paper's
    // exact number.
    assert_eq!(hint_bytes, 480 * 1024 * 1024);
    let _ = CtId(0);
}
