//! Regression tests pinning the capacity-faithful scheduler's revived
//! ablations and the behaviors the 64 MB baseline must keep.

use f1::arch::ArchConfig;
use f1::compiler::{ExpandOptions, Program};
use f1::workloads::benchmarks::lola_mnist_uw;

#[test]
fn csr_ablation_bites_at_4mb() {
    // The revived Table 5 CSR column: on a 4 MB scratchpad, Goodman-Hsu's
    // register-pressure order (which knows nothing of hint reuse) must
    // cost at least 5% over the hint-priority order once spills and
    // refetches are real scheduled events. (Measured ~5.7x here; the
    // deep benchmarks in table5_sensitivity read 4-9x.)
    let p = Program::listing2_matvec(1 << 13, 8, 4);
    let tiny = ArchConfig::f1_default().with_scratchpad_mb(4);
    let ex = f1::compiler::expand::expand(&p, &ExpandOptions::default());
    let base_plan = f1::compiler::movement::schedule(&ex, &tiny);
    let base = f1::compiler::cycle::schedule(&ex, &base_plan, &tiny).makespan;
    let order = f1::compiler::csr::csr_order(&ex.dfg).expect("matvec is CSR-tractable");
    let csr_plan = f1::compiler::movement::schedule_with_order(&ex, &tiny, Some(&order));
    let csr = f1::compiler::cycle::schedule(&ex, &csr_plan, &tiny).makespan;
    let ratio = csr as f64 / base as f64;
    assert!(ratio >= 1.05, "CSR@4MB ratio {ratio:.3} regressed below 1.05x");
}

#[test]
fn capacity_constrained_schedules_validate_at_4mb() {
    // LoLa-MNIST and listing2_matvec at a 4 MB scratchpad: consumers
    // gated on refetch completion, resident set <= capacity at every
    // cycle — check_schedule panics on any violation, and the replayed
    // execution must be bit-identical to direct evaluation.
    let tiny = ArchConfig::f1_default().with_scratchpad_mb(4);
    for (name, p) in [
        ("lola_mnist_uw", lola_mnist_uw(8).program),
        ("listing2_matvec", Program::listing2_matvec(1 << 13, 8, 4)),
    ] {
        let (ex, plan, cs) = f1::compiler_compile(&p, &tiny);
        assert!(plan.traffic.non_compulsory() > 0, "{name}: 4 MB must thrash");
        let report = f1::sim::check_schedule(&ex, &plan, &cs, &tiny);
        assert!(report.makespan > 0, "{name}");
        let inputs = f1::sim::mock_inputs(&ex.dfg);
        let direct = f1::sim::eval_dfg(&ex.dfg, &inputs);
        let replayed = f1::sim::replay_schedule(&ex.dfg, &cs, &tiny, &inputs);
        for &o in ex.dfg.outputs() {
            assert_eq!(replayed[&o], direct[&o], "{name}: output {o:?} differs");
        }
    }
}

#[test]
fn tinypad_makespan_is_monotone_in_capacity() {
    // The tinypad_sweep property at test scale: growing the scratchpad
    // never slows the schedule down.
    let p = lola_mnist_uw(8).program;
    let mut prev = u64::MAX;
    for mb in [1u64, 2, 4, 8, 16, 32, 64] {
        let arch = ArchConfig::f1_default().with_scratchpad_mb(mb);
        let (_, _, cs) = f1::compiler_compile(&p, &arch);
        assert!(
            cs.makespan <= prev,
            "makespan increased with capacity at {mb} MB: {} > {prev}",
            cs.makespan
        );
        prev = cs.makespan;
    }
}

#[test]
fn utilization_unchanged_at_64mb() {
    // The PR 2 pinned floor must survive the capacity model: at the
    // paper's 64 MB scratchpad nothing spills, so gating edges must not
    // cost utilization. (Full-size LoLa-MNIST is pinned by the ignored
    // full-size smoke below; this uses the fast matvec anchor.)
    let p = Program::listing2_matvec(1 << 13, 8, 4);
    let arch = ArchConfig::f1_default();
    let (ex, plan, cs) = f1::compiler_compile(&p, &arch);
    assert_eq!(plan.traffic.interm_store, 0, "64 MB must not spill matvec");
    let report = f1::sim::check_schedule(&ex, &plan, &cs, &arch);
    assert!(
        report.avg_fu_utilization >= 0.15,
        "64 MB utilization {:.3} regressed below the pinned 15%",
        report.avg_fu_utilization
    );
}

#[test]
fn pass_through_outputs_stay_physical() {
    // An input marked directly as an output owes no load and no store:
    // its authoritative bits never leave HBM. Under capacity pressure the
    // schedule must not invent a store of data the scratchpad never held
    // (the checker rejects exactly that), and replay must still produce
    // the input bits for the output.
    let mut p = Program::new(1 << 10);
    let x = p.input(4);
    let y = p.input(4);
    let m = p.mul(x, y);
    p.output(x); // pass-through: never computed on as an output
    p.output(m);
    let mut arch = ArchConfig::f1_default();
    arch.scratchpad_banks = 1;
    arch.bank_bytes = 64 * 1024; // 16 values of 4 KB: forces eviction churn
    let (ex, plan, cs) = f1::compiler_compile(&p, &arch);
    let report = f1::sim::check_schedule(&ex, &plan, &cs, &arch);
    assert!(report.makespan > 0);
    let inputs = f1::sim::mock_inputs(&ex.dfg);
    let direct = f1::sim::eval_dfg(&ex.dfg, &inputs);
    let replayed = f1::sim::replay_schedule(&ex.dfg, &cs, &arch, &inputs);
    for &o in ex.dfg.outputs() {
        assert_eq!(replayed[&o], direct[&o], "output {o:?} differs");
    }
}

/// Full-size (`F1_SCALE=1`) smoke: LoLa-MNIST compiles, validates under
/// the capacity-strict checker, and holds the ~26%-utilization result at
/// 64 MB. Run with `cargo test --release -- --ignored` (slow unoptimized;
/// sub-second in release).
#[test]
#[ignore = "full-size run; CI runs it on schedule/label (use --release)"]
fn full_size_lola_utilization_smoke() {
    let b = lola_mnist_uw(1);
    let arch = ArchConfig::f1_default();
    let (ex, plan, cs) = f1::compiler_compile(&b.program, &arch);
    let report = f1::sim::check_schedule(&ex, &plan, &cs, &arch);
    assert!(
        report.avg_fu_utilization >= 0.15,
        "full-size LoLa utilization {:.3} below the pinned 15%",
        report.avg_fu_utilization
    );
}

/// Full-size Table 4 smoke (the ROADMAP "time the F1_SCALE=1 table3/4
/// binaries" item): every microbenchmark op at every paper parameter set
/// must produce a positive reciprocal throughput, and F1 must beat the
/// measured CPU baseline. Timing recorded in the README.
#[test]
#[ignore = "full-size run; CI runs it on schedule/label"]
fn full_size_table4_smoke() {
    use f1::workloads::cpu_baseline::CpuBaseline;
    use f1::workloads::micro::{f1_reciprocal_s, heax_reciprocal_s, micro_program, MicroOp};
    let arch = ArchConfig::f1_default();
    for (n, _logq, l) in f1::fhe::params::table4_parameter_sets() {
        let mut mp = Program::new(256);
        let x = mp.input(l);
        let y = mp.input(l);
        let m = mp.mul(x, y);
        let r = mp.aut(m, 3);
        let a = mp.add(r, m);
        let s = mp.mod_switch(a);
        mp.output(s);
        let base = CpuBaseline::measure(&mp, 256);
        for op in MicroOp::ALL {
            let f1_s = f1_reciprocal_s(op, n, l, &arch);
            let cpu_s = base.estimate_seconds(&micro_program(op, n, l), n);
            let heax_s = heax_reciprocal_s(op, n, l);
            assert!(f1_s > 0.0 && heax_s > 0.0);
            assert!(
                cpu_s / f1_s > 1.0,
                "{op:?} at N={n}, L={l}: F1 ({f1_s:.3e} s) must beat the CPU ({cpu_s:.3e} s)"
            );
        }
    }
}
