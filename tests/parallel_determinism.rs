//! Parallel-vs-serial determinism: the `F1_PAR_COMPILE`-gated parallel
//! regions in the three scheduling passes must be invisible in the
//! output — over the whole benchmark suite, the serial and parallel
//! compiles must agree on every makespan (delta exactly 0) and on the
//! FNV fingerprint of the emitted `StaticSchedule` streams.

use f1::arch::ArchConfig;
use f1::compiler::par::with_compile_threads;
use f1::compiler::CycleSchedule;

/// FNV-1a over the schedule's stream debug rendering — the repo's
/// fingerprint idiom.
fn fnv_fingerprint(cs: &CycleSchedule) -> u64 {
    let s = format!("{:?}", cs.schedule);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[test]
fn whole_suite_is_identical_serial_vs_parallel() {
    // Scale 16 keeps the suite fast while exercising every pass's
    // parallel region (the thread override forces the parallel code
    // paths even on a single-core host).
    let arch = ArchConfig::f1_default();
    for b in f1::workloads::all_benchmarks(16) {
        let (ex_s, plan_s, cs_s) =
            with_compile_threads(1, || f1::compiler_compile(&b.program, &arch));
        let (ex_p, plan_p, cs_p) =
            with_compile_threads(4, || f1::compiler_compile(&b.program, &arch));
        assert_eq!(ex_s.hom_order, ex_p.hom_order, "{}: hom-op order differs", b.name);
        assert_eq!(
            format!("{:?}", plan_s.events),
            format!("{:?}", plan_p.events),
            "{}: residency event scripts differ",
            b.name
        );
        assert_eq!(cs_s.makespan, cs_p.makespan, "{}: makespan delta must be exactly 0", b.name);
        assert_eq!(
            fnv_fingerprint(&cs_s),
            fnv_fingerprint(&cs_p),
            "{}: StaticSchedule stream fingerprints differ",
            b.name
        );
    }
}

#[test]
fn thread_override_nests_and_restores() {
    // `with_compile_threads` is the test harness for the invariant
    // above; make sure the guard restores the outer value even when
    // nested, so suite-level tests cannot leak overrides into each
    // other.
    use f1::compiler::par::compile_threads;
    let outer = compile_threads();
    with_compile_threads(3, || {
        assert_eq!(compile_threads(), 3);
        with_compile_threads(1, || assert_eq!(compile_threads(), 1));
        assert_eq!(compile_threads(), 3);
    });
    assert_eq!(compile_threads(), outer);
}
