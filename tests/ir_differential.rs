//! Differential property tests for the IR optimization pipeline: a
//! random typed `FheProgram`, optimized and unoptimized, must produce
//! **bit-identical decrypted results** through `f1-sim::functional`
//! (real BGV execution), and each variant's static schedule must replay
//! bit-identically to direct dataflow evaluation through
//! `f1-sim::replay` under a thrashing scratchpad.

use f1::arch::ArchConfig;
use f1::compiler::analysis::noise as noise_analysis;
use f1::compiler::analysis::{Analyzer, Severity};
use f1::compiler::ir::rescale::reflow_at;
use f1::compiler::ir::{FheProgram, IrId, NoisePolicy, Scheme};
use f1::fhe::bgv::Plaintext;
use f1::fhe::noise::NoiseModel;
use f1::fhe::params::BgvParams;
use f1::sim::{bind_constants, BgvExecutor};
use proptest::prelude::*;
use rand::SeedableRng;
use std::collections::HashMap;

/// Materializes a random op recipe as a typed program over ring `n`.
/// The recipe deliberately revisits operands and rotation amounts so
/// CSE, rotation dedup and DCE all get real work; only the last value
/// is an output, leaving plenty dead.
fn build_fhe(n: usize, start_level: usize, choices: &[(u8, u8)]) -> FheProgram {
    let mut p = FheProgram::new(n, Scheme::Bgv);
    let mut vals = vec![p.input(start_level), p.input(start_level)];
    for (idx, &(c, sel)) in choices.iter().enumerate() {
        let a = vals[sel as usize % vals.len()];
        let b = vals[(sel as usize / 2) % vals.len()];
        let (la, lb) = (p.level_of(a), p.level_of(b));
        let new = match c % 8 {
            0 if la == lb => p.add(a, b),
            // Depth guard keeps the BGV noise budget comfortable.
            1 if la == lb && p.depth_of(a) + p.depth_of(b) < 2 => p.mul(a, b),
            2 => p.aut(a, 3),
            3 => p.rotate(a, 1 + idx % 3),
            4 if la >= 2 => p.mod_switch(a),
            5 => {
                let k = p.scalar(1 + (sel as u64 % 4), la);
                p.mul_plain(a, k)
            }
            6 => {
                let w = p.plain_input(la);
                p.add_plain(a, w)
            }
            // A deliberate identity: x * 1 (constant folding fodder).
            _ => {
                let one = p.scalar(1, la);
                p.mul_plain(a, one)
            }
        };
        vals.push(new);
    }
    p.output(*vals.last().unwrap());
    p
}

/// Runs a lowered variant functionally with inputs bound by build-time
/// ordinal, returning the full run (decrypted outputs plus measured
/// noise).
fn run_functional(
    fhe: &FheProgram,
    params: &BgvParams,
    ct_data: &[Plaintext],
    pt_data: &[Plaintext],
) -> f1::sim::FunctionalRun {
    let lowered = fhe.lower();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x1D1F);
    let exec = BgvExecutor::new(params.clone(), &lowered.program, &mut rng);
    let mut inputs = HashMap::new();
    for &(ordinal, id) in &lowered.ct_inputs {
        inputs.insert(id, ct_data[ordinal as usize].clone());
    }
    let mut plains = bind_constants(&lowered, params);
    for &(ordinal, id) in &lowered.pt_inputs {
        plains.insert(id, pt_data[ordinal as usize].clone());
    }
    exec.run(&lowered.program, &inputs, &plains, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn optimized_and_unoptimized_decrypt_identically(
        recipe in proptest::collection::vec((0u8..8, 0u8..16), 1..12)
    ) {
        // Functional differential on real BGV at a small ring: the same
        // plaintext inputs, fed by ordinal to both variants, must
        // decrypt to exactly the same outputs.
        let n = 64usize;
        let fhe = build_fhe(n, 4, &recipe);
        let (opt, stats) = fhe.optimize();
        prop_assert!(stats.nodes_after <= stats.nodes_before);

        let params = BgvParams::test_small(n, 4);
        let ct_data: Vec<Plaintext> = (0..16)
            .map(|i| Plaintext::from_coeffs(&params, &[(3 * i + 1) as u64, (i % 5) as u64]))
            .collect();
        let pt_data: Vec<Plaintext> = (0..16)
            .map(|i| Plaintext::from_coeffs(&params, &[(2 * i + 1) as u64]))
            .collect();
        let out_u = run_functional(&fhe, &params, &ct_data, &pt_data).outputs;
        let out_o = run_functional(&opt, &params, &ct_data, &pt_data).outputs;
        prop_assert_eq!(out_u.len(), out_o.len());
        for (i, (u, o)) in out_u.iter().zip(&out_o).enumerate() {
            for j in 0..n {
                prop_assert_eq!(
                    u.coeff(j), o.coeff(j),
                    "output {} coeff {} differs after optimization", i, j
                );
            }
        }
    }

    #[test]
    fn both_variants_replay_bit_identically(
        recipe in proptest::collection::vec((0u8..8, 0u8..16), 1..12)
    ) {
        // Scheduler differential at a hardware-plausible ring: each
        // variant compiles under a thrashing 64 KB pad and the full
        // 64 MB machine, and its replayed execution matches direct DFG
        // evaluation bit for bit.
        let fhe = build_fhe(1 << 10, 4, &recipe);
        let (opt, _) = fhe.optimize();
        for variant in [&fhe, &opt] {
            let lowered = variant.lower();
            for pad_kb in [64u64, 64 * 1024] {
                let mut arch = ArchConfig::f1_default();
                arch.scratchpad_banks = 1;
                arch.bank_bytes = pad_kb * 1024;
                let (ex, _, cs) = f1::compiler_compile(&lowered.program, &arch);
                let inputs = f1::sim::mock_inputs(&ex.dfg);
                let direct = f1::sim::eval_dfg(&ex.dfg, &inputs);
                let replayed = f1::sim::replay_schedule(&ex.dfg, &cs, &arch, &inputs);
                for &o in ex.dfg.outputs() {
                    prop_assert_eq!(
                        &replayed[&o], &direct[&o],
                        "output {:?} differs at {} KB", o, pad_kb
                    );
                }
            }
        }
    }

    #[test]
    fn optimization_never_changes_output_types(
        recipe in proptest::collection::vec((0u8..8, 0u8..16), 1..16)
    ) {
        let fhe = build_fhe(1 << 10, 4, &recipe);
        let (opt, _) = fhe.optimize();
        prop_assert_eq!(fhe.outputs().len(), opt.outputs().len());
        for (&a, &b) in fhe.outputs().iter().zip(opt.outputs()) {
            prop_assert_eq!(
                fhe.level_of(a), opt.level_of(b),
                "output level drifted under optimization"
            );
        }
        let _ = IrId(0);
    }

    #[test]
    fn rescale_insertion_proves_margin_and_preserves_semantics(
        recipe in proptest::collection::vec((0u8..8, 0u8..16), 1..12)
    ) {
        // The automatic noise-management gate, end to end: reflow an
        // under-provisioned random program (hand switches dropped,
        // placement re-derived, inputs re-provisioned at a level the
        // bound can prove), then (1) the managed program must carry a
        // positive worst-case margin and pass the analyzer with no
        // Error-severity diagnostics, and (2) it must decrypt
        // bit-identically to the hand-managed original on real BGV —
        // mod-switch placement is semantically free in BGV because the
        // executor divides the accumulated correction factors out at
        // decryption.
        let n = 64usize;
        let fhe = build_fhe(n, 4, &recipe);
        let (managed, stats) = reflow_at(&fhe, 12, NoisePolicy::LazyAtThreshold(8.0));
        prop_assert!(
            stats.min_margin_wc_after > 0.0,
            "managed program must prove a positive margin: {:?}", stats
        );
        let report = Analyzer::new().analyze(&managed);
        for d in &report.diagnostics {
            prop_assert!(
                d.severity != Severity::Error,
                "managed program fails the lint gate: {:?}", d
            );
        }

        let params = BgvParams::test_small(n, 12);
        let ct_data: Vec<Plaintext> = (0..16)
            .map(|i| Plaintext::from_coeffs(&params, &[(3 * i + 1) as u64, (i % 5) as u64]))
            .collect();
        let pt_data: Vec<Plaintext> = (0..16)
            .map(|i| Plaintext::from_coeffs(&params, &[(2 * i + 1) as u64]))
            .collect();
        let out_hand = run_functional(&fhe, &params, &ct_data, &pt_data).outputs;
        let out_managed = run_functional(&managed, &params, &ct_data, &pt_data).outputs;
        prop_assert_eq!(out_hand.len(), out_managed.len());
        for (i, (h, m)) in out_hand.iter().zip(&out_managed).enumerate() {
            for j in 0..n {
                prop_assert_eq!(
                    h.coeff(j), m.coeff(j),
                    "output {} coeff {} differs after rescale insertion", i, j
                );
            }
        }
    }

    #[test]
    fn static_noise_bound_dominates_measured_noise(
        recipe in proptest::collection::vec((0u8..8, 0u8..16), 1..12)
    ) {
        // Soundness of the compiler's noise abstract interpretation: on
        // every random program — optimized and unoptimized — the static
        // worst-case bound at each output must dominate the noise a real
        // BGV execution actually accumulates there.
        let n = 64usize;
        let fhe = build_fhe(n, 4, &recipe);
        let (opt, _) = fhe.optimize();

        let params = BgvParams::test_small(n, 4);
        let model = NoiseModel::bgv(n, params.plaintext_modulus, params.error_eta);
        let ct_data: Vec<Plaintext> = (0..16)
            .map(|i| Plaintext::from_coeffs(&params, &[(3 * i + 1) as u64, (i % 5) as u64]))
            .collect();
        let pt_data: Vec<Plaintext> = (0..16)
            .map(|i| Plaintext::from_coeffs(&params, &[(2 * i + 1) as u64]))
            .collect();
        for (which, variant) in [("unoptimized", &fhe), ("optimized", &opt)] {
            let report = noise_analysis::analyze_with(variant, model.clone());
            let run = run_functional(variant, &params, &ct_data, &pt_data);
            prop_assert_eq!(variant.outputs().len(), run.output_noise.len());
            for (i, &o) in variant.outputs().iter().enumerate() {
                let bound = report.facts[o.0 as usize].wc;
                let measured = run.output_noise[i];
                prop_assert!(
                    measured <= bound,
                    "{} output {}: measured noise 2^{:.1} exceeds static bound 2^{:.1}",
                    which, i, measured, bound
                );
            }
        }
    }
}
