//! Property-based tests over the compilation pipeline: random small
//! programs must always produce valid, hazard-free schedules with
//! traffic at least the compulsory bound — and, under scratchpad
//! capacities down to a few polynomials, schedules whose replayed
//! execution is bit-identical to direct dataflow evaluation.

use f1::arch::ArchConfig;
use f1::compiler::{ExpandOptions, Program};
use proptest::prelude::*;

/// A random program: a sequence of ops over a growing set of ciphertexts.
fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(0u8..5, 1..20).prop_map(|choices| {
        let mut p = Program::new(1 << 10);
        let mut cts = vec![p.input(4), p.input(4)];
        let mut idx = 0usize;
        for c in choices {
            let a = cts[idx % cts.len()];
            let b = cts[(idx / 2) % cts.len()];
            idx += 1;
            let lvl_a = p.level_of(a);
            let lvl_b = p.level_of(b);
            let new = match c {
                0 if lvl_a == lvl_b => p.add(a, b),
                1 if lvl_a == lvl_b => p.mul(a, b),
                2 => p.aut(a, 3),
                3 => p.rotate(a, 1 + idx % 4),
                4 if lvl_a >= 2 => p.mod_switch(a),
                _ => p.aut(a, 5),
            };
            cts.push(new);
        }
        p.output(*cts.last().unwrap());
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_schedule_validly(p in arb_program()) {
        let arch = ArchConfig::f1_default();
        let (ex, plan, cycles) = f1::compiler_compile(&p, &arch);
        // check_schedule panics on any dependence/hazard violation.
        let report = f1::sim::check_schedule(&ex, &plan, &cycles, &arch);
        prop_assert!(report.traffic.total() >= report.traffic.compulsory());
        prop_assert_eq!(plan.order.len(), ex.dfg.instrs().len());
        prop_assert!(report.makespan > 0);
    }

    #[test]
    fn scratchpad_size_never_increases_traffic_when_grown(p in arb_program()) {
        // Monotonicity: a bigger scratchpad cannot force more traffic.
        let mut small = ArchConfig::f1_default();
        small.scratchpad_banks = 1;
        small.bank_bytes = 2 * 1024 * 1024;
        let big = ArchConfig::f1_default();
        let ex = f1::compiler::expand::expand(&p, &ExpandOptions::default());
        let t_small = f1::compiler::movement::schedule(&ex, &small).traffic.total();
        let t_big = f1::compiler::movement::schedule(&ex, &big).traffic.total();
        prop_assert!(t_big <= t_small, "big pad {t_big} > small pad {t_small}");
    }

    #[test]
    fn no_fu_slot_is_ever_double_booked(p in arb_program()) {
        // Direct property over the list scheduler's output, independent
        // of check_schedule: no two ComputeEntrys may share a
        // (cluster, fu, fu_index) slot with overlapping occupancy.
        let arch = ArchConfig::f1_default();
        let (ex, _, cycles) = f1::compiler_compile(&p, &arch);
        let mut by_slot: std::collections::HashMap<(usize, f1::isa::FuType, usize), Vec<u64>> =
            std::collections::HashMap::new();
        for (c, stream) in cycles.schedule.compute.iter().enumerate() {
            for e in stream {
                by_slot.entry((c, e.fu, e.fu_index)).or_default().push(e.cycle);
            }
        }
        for ((c, fu, slot), mut starts) in by_slot {
            starts.sort_unstable();
            let occ = arch.occupancy(fu, ex.dfg.n);
            for w in starts.windows(2) {
                prop_assert!(
                    w[1] >= w[0] + occ,
                    "cluster {} {:?}[{}] double-booked at {} and {}",
                    c, fu, slot, w[0], w[1]
                );
            }
        }
    }

    #[test]
    fn cycle_schedule_replay_matches_direct_evaluation(p in arb_program()) {
        // The capacity-faithfulness differential: at scratchpads from
        // 48 KB (a dozen 4 KB polynomials — heavy spilling/refetching)
        // up to the full 64 MB, the cycle-scheduled execution replayed
        // through f1-sim's scratchpad-literal interpreter must produce
        // bit-identical outputs to direct DFG evaluation, and the
        // strengthened checker must accept every schedule.
        for pad_kb in [48u64, 96, 64 * 1024] {
            let mut arch = ArchConfig::f1_default();
            arch.scratchpad_banks = 1;
            arch.bank_bytes = pad_kb * 1024;
            let (ex, plan, cycles) = f1::compiler_compile(&p, &arch);
            let report = f1::sim::check_schedule(&ex, &plan, &cycles, &arch);
            prop_assert!(report.makespan > 0);
            let inputs = f1::sim::mock_inputs(&ex.dfg);
            let direct = f1::sim::eval_dfg(&ex.dfg, &inputs);
            let replayed = f1::sim::replay_schedule(&ex.dfg, &cycles, &arch, &inputs);
            for &o in ex.dfg.outputs() {
                prop_assert_eq!(
                    &replayed[&o], &direct[&o],
                    "output {:?} differs at a {} KB scratchpad", o, pad_kb
                );
            }
        }
    }

    #[test]
    fn csr_orders_are_always_valid(p in arb_program()) {
        let ex = f1::compiler::expand::expand(&p, &ExpandOptions::default());
        if let Some(order) = f1::compiler::csr::csr_order(&ex.dfg) {
            let arch = ArchConfig::f1_default();
            let plan = f1::compiler::movement::schedule_with_order(&ex, &arch, Some(&order));
            let cycles = f1::compiler::cycle::schedule(&ex, &plan, &arch);
            let report = f1::sim::check_schedule(&ex, &plan, &cycles, &arch);
            prop_assert!(report.makespan > 0);
        }
    }
}
