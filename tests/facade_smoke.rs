//! Smoke test for the `f1` facade: the README/doc-example entry point
//! must keep compiling a real program end to end through the re-exported
//! stack, and the resulting schedule must validate.

use f1::arch::ArchConfig;
use f1::compiler::Program;

#[test]
fn facade_compiles_listing2_matvec_end_to_end() {
    let program = Program::listing2_matvec(1 << 12, 4, 2);
    let arch = ArchConfig::f1_default();

    let (ex, plan, cycles) = f1::compiler_compile(&program, &arch);

    assert!(cycles.makespan > 0, "schedule must have a positive makespan");
    assert_eq!(
        plan.order.len(),
        ex.dfg.instrs().len(),
        "movement plan must order every expanded instruction"
    );

    // The checker replays the schedule and panics on any dependence or
    // hazard violation; its report must be self-consistent.
    let report = f1::sim::check_schedule(&ex, &plan, &cycles, &arch);
    assert_eq!(report.makespan, cycles.makespan);
    assert!(
        report.traffic.total() >= report.traffic.compulsory(),
        "total off-chip traffic cannot beat the compulsory bound"
    );
}

#[test]
fn facade_reexports_reach_every_layer() {
    // One token from each re-exported crate, so a facade wiring regression
    // fails here rather than in downstream examples.
    let _ = f1::modarith::WORD_BITS;
    let _ = f1::poly::MIN_LOG_N;
    let _ = f1::fhe::params::BgvParams::test_small(64, 3);
    let _ = f1::isa::FuType::Ntt;
    let _ = f1::arch::ArchConfig::f1_default();
    let _ = f1::workloads::all_benchmarks(8);
}
