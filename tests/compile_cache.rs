//! Serialization and schedule-cache regression tests: compiled
//! artifacts must survive serialization byte-for-byte, deserialized
//! schedules must still satisfy the checker and replay bit-identically,
//! and a corrupted cache entry must fall back to a fresh compile — the
//! cache can cost time, never correctness.

use f1::arch::ArchConfig;
use f1::compiler::cache::{self, CacheStatus};
use f1::compiler::{CycleSchedule, Expanded, MovePlan, Program};
use proptest::prelude::*;

fn fingerprint(cs: &CycleSchedule) -> String {
    format!("{:?}", cs.schedule)
}

/// A random small program (mirrors `proptest_pipeline`'s generator).
fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(0u8..5, 1..20).prop_map(|choices| {
        let mut p = Program::new(1 << 10);
        let mut cts = vec![p.input(4), p.input(4)];
        let mut idx = 0usize;
        for c in choices {
            let a = cts[idx % cts.len()];
            let b = cts[(idx / 2) % cts.len()];
            idx += 1;
            let lvl_a = p.level_of(a);
            let lvl_b = p.level_of(b);
            let new = match c {
                0 if lvl_a == lvl_b => p.add(a, b),
                1 if lvl_a == lvl_b => p.mul(a, b),
                2 => p.aut(a, 3),
                3 => p.rotate(a, 1 + idx % 4),
                4 if lvl_a >= 2 => p.mod_switch(a),
                _ => p.aut(a, 5),
            };
            cts.push(new);
        }
        p.output(*cts.last().unwrap());
        p
    })
}

/// The two scratchpad sizes the round-trip property runs at: a 64 KB
/// pad (16 values at N = 1024 — evictions, refetches and writebacks
/// all over the streams) and the paper's 64 MB pad (nothing spills).
fn pads() -> [ArchConfig; 2] {
    let mut tiny = ArchConfig::f1_default();
    tiny.scratchpad_banks = 1;
    tiny.bank_bytes = 64 * 1024;
    [tiny, ArchConfig::f1_default()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn artifacts_round_trip_and_replay_bit_for_bit(p in arb_program()) {
        for arch in pads() {
            let (ex, plan, cs) = f1::compiler_compile(&p, &arch);
            let bytes = serde::to_bytes(&(&ex, &plan, &cs));
            let (ex2, plan2, cs2): (Expanded, MovePlan, CycleSchedule) =
                serde::from_bytes(&bytes).expect("artifacts must deserialize");
            // Byte-identical round trip: re-serializing the decoded
            // artifacts reproduces the exact bytes.
            prop_assert_eq!(&serde::to_bytes(&(&ex2, &plan2, &cs2)), &bytes);
            prop_assert_eq!(fingerprint(&cs), fingerprint(&cs2));
            // The deserialized schedule is checker-clean on its own.
            let report = f1::sim::check_schedule(&ex2, &plan2, &cs2, &arch);
            prop_assert!(report.makespan > 0);
            // And replays bit-for-bit against direct DFG evaluation.
            let inputs = f1::sim::mock_inputs(&ex2.dfg);
            let direct = f1::sim::eval_dfg(&ex2.dfg, &inputs);
            let replayed = f1::sim::replay_schedule(&ex2.dfg, &cs2, &arch, &inputs);
            for out in ex2.output_values.iter().flatten() {
                prop_assert_eq!(&replayed[out], &direct[out], "output {:?} differs", out);
            }
        }
    }
}

/// One sequential test owns `F1_CACHE_DIR` for this binary (env vars
/// are process-global; splitting these stages into parallel #[test]s
/// would race on it).
#[test]
fn cache_hits_reuse_and_corruption_falls_back() {
    let dir = std::env::temp_dir().join(format!("f1-cache-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("F1_CACHE_DIR", &dir);
    let arch = ArchConfig::f1_default();
    let p = Program::listing2_matvec(1 << 12, 4, 3);

    // Cold: miss, computes and stores.
    let ((_, _, cs_cold), st) = cache::compile_cached(&p, &arch);
    assert_eq!(st, CacheStatus::Miss);
    let reference = fingerprint(&cs_cold);

    // Warm: hit, byte-identical streams, checker-clean.
    let ((ex_hit, plan_hit, cs_hit), st) = cache::compile_cached(&p, &arch);
    assert_eq!(st, CacheStatus::Hit);
    assert_eq!(fingerprint(&cs_hit), reference);
    f1::sim::check_schedule(&ex_hit, &plan_hit, &cs_hit, &arch);

    let entry = cache::dsl_entry_path(&p, &arch);
    assert!(entry.exists(), "cache entry must exist after a miss");

    // Bit-flip deep in the payload: the entry must be rejected (payload
    // checksum) and the compile must fall back fresh — same schedule.
    let mut bytes = std::fs::read(&entry).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&entry, &bytes).unwrap();
    let ((_, _, cs), st) = cache::compile_cached(&p, &arch);
    assert_eq!(st, CacheStatus::Miss, "corrupted entry must not hit");
    assert_eq!(fingerprint(&cs), reference);

    // The fallback rewrote a good entry; corrupt again by truncation.
    let bytes = std::fs::read(&entry).unwrap();
    std::fs::write(&entry, &bytes[..bytes.len() / 3]).unwrap();
    let ((_, _, cs), st) = cache::compile_cached(&p, &arch);
    assert_eq!(st, CacheStatus::Miss, "truncated entry must not hit");
    assert_eq!(fingerprint(&cs), reference);

    // Garbage that is not even a header.
    std::fs::write(&entry, b"not a cache artifact").unwrap();
    let ((_, _, cs), st) = cache::compile_cached(&p, &arch);
    assert_eq!(st, CacheStatus::Miss);
    assert_eq!(fingerprint(&cs), reference);

    // After all that abuse the rewritten entry hits again.
    let ((_, _, cs), st) = cache::compile_cached(&p, &arch);
    assert_eq!(st, CacheStatus::Hit);
    assert_eq!(fingerprint(&cs), reference);

    // Distinct arch → distinct key: no false sharing.
    let small = ArchConfig::f1_default().with_scratchpad_mb(4);
    let ((_, _, _), st) = cache::compile_cached(&p, &small);
    assert_eq!(st, CacheStatus::Miss, "a different arch must not hit the same entry");

    let _ = std::fs::remove_dir_all(&dir);
}
