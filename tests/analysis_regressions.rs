//! Regressions pinned by the static analysis framework.
//!
//! The between-pass typing validator (wired into `optimize()`) caught a
//! real miscompile on its first run over the suite: `constant_fold`'s
//! `x * 1` identity rewrite aliased a CKKS `MulPlain` to its operand
//! even though the two differ in scale (`MulPlain` adds the plaintext's
//! scale), silently dropping a rescale obligation from every downstream
//! type. These tests pin the fix and keep the validator exercised on
//! the full benchmark suite.

use f1::compiler::analysis::{self, typing};
use f1::compiler::ir::{FheProgram, Scheme};

/// A CKKS program whose only simplification opportunity is `x * 1`.
fn ckks_times_one() -> FheProgram {
    let mut p = FheProgram::new(1 << 10, Scheme::Ckks);
    let x = p.input(4);
    let one = p.scalar(1, 4);
    let m = p.mul_plain(x, one); // scale 2: carries a rescale obligation
    let r = p.rescale(m); // back to scale 1
    let s = p.square(r);
    p.output(s);
    p
}

#[test]
fn ckks_mul_by_one_is_not_folded_into_a_scale_drift() {
    let p = ckks_times_one();
    let before = typing::interface(&p);
    // With the unsound fold this panicked inside optimize(): the pass
    // validator flagged constant_fold for drifting the output scale.
    let (opt, _) = p.optimize();
    assert!(
        typing::verify_step(&before, &opt, "optimize").is_empty(),
        "optimized CKKS program drifted its interface"
    );
    // The multiplication by 1 must survive: its scale contribution is
    // semantically meaningful in CKKS.
    assert_eq!(
        p.node(*p.outputs().first().unwrap()).ty.scale,
        opt.node(*opt.outputs().first().unwrap()).ty.scale,
        "output scale changed under optimization"
    );
    assert!(typing::check(&opt).is_empty(), "optimized program is ill-typed");
}

#[test]
fn bgv_mul_by_one_still_folds() {
    // The same shape in BGV (scale is identically 0) must keep folding.
    let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
    let x = p.input(4);
    let one = p.scalar(1, 4);
    let m = p.mul_plain(x, one);
    let s = p.square(m);
    p.output(s);
    let (opt, stats) = p.optimize();
    assert!(stats.folded >= 1, "BGV x*1 no longer folds: {stats:?}");
    assert!(typing::check(&opt).is_empty());
}

#[test]
fn every_benchmark_passes_between_pass_verification() {
    // Benchmark::finish runs optimize(), which now asserts the typing
    // interface after every pass — so building the suite is itself the
    // test. Re-check the final programs explicitly for good measure.
    for b in f1::workloads::all_benchmarks(8) {
        let before = typing::interface(&b.fhe);
        let (opt, _) = b.fhe.optimize();
        assert!(
            typing::verify_step(&before, &opt, "optimize").is_empty(),
            "{}: optimized program drifted its interface",
            b.name
        );
        assert!(typing::check(&opt).is_empty(), "{}: ill-typed after optimize", b.name);
    }
}

#[test]
fn analyzer_reports_no_errors_on_the_benchmark_suite() {
    // The hand-managed programs run at the paper's (N, L), which
    // under-provisions the deep benchmarks by design; their margins are
    // informational, so `noise::budget-exhausted` is demoted to Info
    // (exactly what the `analyze` bin records as a waiver). The Error
    // gate lives on the managed programs — see the test below.
    for b in f1::workloads::all_benchmarks(8) {
        let mut analyzer = analysis::Analyzer::new();
        analyzer.registry_mut().override_severity(
            "noise::budget-exhausted",
            analysis::Severity::Info,
            f1::workloads::Benchmark::HAND_MANAGED_NOTE,
        );
        let (opt, _) = b.fhe.optimize();
        let report = analyzer.analyze(&opt);
        let errors: Vec<_> =
            report.diagnostics.iter().filter(|d| d.severity == analysis::Severity::Error).collect();
        assert!(errors.is_empty(), "{}: {errors:?}", b.name);
    }
}

#[test]
fn managed_suite_proves_positive_margins_without_waivers() {
    // The merge gate: every benchmark reflowed by insert_rescales at the
    // param_search-found (N, L) must carry a positive worst-case margin
    // and pass the full analyzer with NO severity overrides — the two
    // bootstrapping budget-exhausted waivers are gone.
    let spec = analysis::SearchSpec::default();
    for b in f1::workloads::all_benchmarks(8) {
        let r = analysis::param_search::search(&b.fhe, &spec)
            .unwrap_or_else(|| panic!("{}: no (N, L) meets the margin target", b.name));
        assert!(
            r.stats.min_margin_wc_after >= spec.target_margin_bits,
            "{}: managed wc margin {:.1} below target",
            b.name,
            r.stats.min_margin_wc_after
        );
        let report = analysis::Analyzer::new().analyze(&r.managed);
        let errors: Vec<_> =
            report.diagnostics.iter().filter(|d| d.severity == analysis::Severity::Error).collect();
        assert!(errors.is_empty(), "{} (managed, no waivers): {errors:?}", b.name);
    }
}

#[test]
fn the_suite_compiles_end_to_end_under_an_opt_in_noise_policy() {
    // `compile_fhe_with(Some(policy))` must take every benchmark through
    // reflow, optimization, lowering, expansion and cycle scheduling —
    // the full pipeline — at a heavy width reduction. GSW programs pass
    // through the reflow unchanged, so the whole suite is eligible.
    let arch = f1::arch::ArchConfig::f1_default();
    for b in f1::workloads::all_benchmarks(64) {
        let (lowered, _, ex, _, cycles) = f1::compiler::compile_fhe_with(
            &b.fhe,
            &arch,
            Some(f1::compiler::NoisePolicy::LazyAtThreshold(8.0)),
        );
        assert!(!lowered.program.ops().is_empty(), "{}: empty lowering", b.name);
        assert!(!ex.dfg.instrs().is_empty(), "{}: empty expansion", b.name);
        assert!(cycles.makespan > 0, "{}: empty schedule", b.name);
    }
}

/// Regression for the silent CKKS rescale saturation: `mod_switch` on a
/// scale-1 value clamps the scale at the Δ floor, burning a level for no
/// scale reduction. Strict-scale programs now reject it at build time…
#[test]
#[should_panic(expected = "saturates")]
fn strict_scale_program_rejects_rescale_at_unit_scale() {
    let mut p = FheProgram::new(1 << 10, Scheme::Ckks).with_strict_scale();
    let x = p.input(4); // scale 1 already
    let r = p.mod_switch(x); // must panic: nothing to rescale away
    p.output(r);
}

/// …and non-strict programs get a default-set lint pointing at it.
#[test]
fn lax_program_lints_saturated_rescale() {
    let mut p = FheProgram::new(1 << 10, Scheme::Ckks);
    let x = p.input(4);
    let r = p.mod_switch(x); // scale-1 rescale: saturates silently
    p.output(r);
    let report = analysis::Analyzer::new().analyze(&p);
    assert!(
        report.diagnostics.iter().any(|d| d.rule == "scale::saturated-rescale"),
        "scale::saturated-rescale missing from default set: {:?}",
        report.diagnostics
    );
}
