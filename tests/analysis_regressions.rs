//! Regressions pinned by the static analysis framework.
//!
//! The between-pass typing validator (wired into `optimize()`) caught a
//! real miscompile on its first run over the suite: `constant_fold`'s
//! `x * 1` identity rewrite aliased a CKKS `MulPlain` to its operand
//! even though the two differ in scale (`MulPlain` adds the plaintext's
//! scale), silently dropping a rescale obligation from every downstream
//! type. These tests pin the fix and keep the validator exercised on
//! the full benchmark suite.

use f1::compiler::analysis::{self, typing};
use f1::compiler::ir::{FheProgram, Scheme};

/// A CKKS program whose only simplification opportunity is `x * 1`.
fn ckks_times_one() -> FheProgram {
    let mut p = FheProgram::new(1 << 10, Scheme::Ckks);
    let x = p.input(4);
    let one = p.scalar(1, 4);
    let m = p.mul_plain(x, one); // scale 2: carries a rescale obligation
    let r = p.rescale(m); // back to scale 1
    let s = p.square(r);
    p.output(s);
    p
}

#[test]
fn ckks_mul_by_one_is_not_folded_into_a_scale_drift() {
    let p = ckks_times_one();
    let before = typing::interface(&p);
    // With the unsound fold this panicked inside optimize(): the pass
    // validator flagged constant_fold for drifting the output scale.
    let (opt, _) = p.optimize();
    assert!(
        typing::verify_step(&before, &opt, "optimize").is_empty(),
        "optimized CKKS program drifted its interface"
    );
    // The multiplication by 1 must survive: its scale contribution is
    // semantically meaningful in CKKS.
    assert_eq!(
        p.node(*p.outputs().first().unwrap()).ty.scale,
        opt.node(*opt.outputs().first().unwrap()).ty.scale,
        "output scale changed under optimization"
    );
    assert!(typing::check(&opt).is_empty(), "optimized program is ill-typed");
}

#[test]
fn bgv_mul_by_one_still_folds() {
    // The same shape in BGV (scale is identically 0) must keep folding.
    let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
    let x = p.input(4);
    let one = p.scalar(1, 4);
    let m = p.mul_plain(x, one);
    let s = p.square(m);
    p.output(s);
    let (opt, stats) = p.optimize();
    assert!(stats.folded >= 1, "BGV x*1 no longer folds: {stats:?}");
    assert!(typing::check(&opt).is_empty());
}

#[test]
fn every_benchmark_passes_between_pass_verification() {
    // Benchmark::finish runs optimize(), which now asserts the typing
    // interface after every pass — so building the suite is itself the
    // test. Re-check the final programs explicitly for good measure.
    for b in f1::workloads::all_benchmarks(8) {
        let before = typing::interface(&b.fhe);
        let (opt, _) = b.fhe.optimize();
        assert!(
            typing::verify_step(&before, &opt, "optimize").is_empty(),
            "{}: optimized program drifted its interface",
            b.name
        );
        assert!(typing::check(&opt).is_empty(), "{}: ill-typed after optimize", b.name);
    }
}

#[test]
fn analyzer_reports_no_errors_on_the_benchmark_suite() {
    for b in f1::workloads::all_benchmarks(8) {
        let mut analyzer = analysis::Analyzer::new();
        if let Some(why) = b.noise_waiver() {
            analyzer.registry_mut().override_severity(
                "noise::budget-exhausted",
                analysis::Severity::Warning,
                why,
            );
        }
        let (opt, _) = b.fhe.optimize();
        let report = analyzer.analyze(&opt);
        let errors: Vec<_> =
            report.diagnostics.iter().filter(|d| d.severity == analysis::Severity::Error).collect();
        assert!(errors.is_empty(), "{}: {errors:?}", b.name);
    }
}
