//! Determinism regression tests: compiling the same program twice must
//! produce byte-identical static schedules — zero makespan wobble.
//!
//! Background (ROADMAP): pass 2's eviction scan was made deterministic
//! in PR 4, but full-size runs still wobbled ~0.3% run to run because
//! pass 1's hint-popularity vote broke count ties by `HashMap`
//! iteration order (per-process random hash seeds → different hom-op
//! orders → different schedules). The vote now uses an ordered map with
//! value-id tie-breaks, `Expanded::hint_values` is a `BTreeMap`, and
//! the IR passes iterate node lists only. Each `HashMap` in std gets a
//! distinct hash seed even within one process, so the double-compile
//! below catches hash-order leaks without needing two process runs (CI
//! additionally diffs two separate runs of the `determinism_check` bin).

use f1::arch::ArchConfig;
use f1::compiler::CycleSchedule;
use f1::workloads::benchmarks::lola_mnist_uw;

fn fingerprint(cs: &CycleSchedule) -> String {
    format!("{:?}", cs.schedule)
}

#[test]
fn lola_mnist_double_compile_is_byte_identical() {
    // The satellite's pinned case: LoLa-MNIST at scale 8, compiled
    // twice from independently built programs; the emitted
    // StaticSchedule streams must match byte for byte and the makespan
    // delta must be exactly 0.
    let arch = ArchConfig::f1_default();
    let b1 = lola_mnist_uw(8);
    let b2 = lola_mnist_uw(8);
    let (_, _, cs1) = f1::compiler_compile(&b1.program, &arch);
    let (_, _, cs2) = f1::compiler_compile(&b2.program, &arch);
    assert_eq!(cs1.makespan, cs2.makespan, "makespan delta must be exactly 0");
    assert_eq!(
        fingerprint(&cs1),
        fingerprint(&cs2),
        "StaticSchedule streams must be byte-identical"
    );
}

#[test]
fn whole_suite_double_compiles_identically_at_test_scale() {
    // Every benchmark (scale 16 keeps this fast), plus the move plans:
    // schedules, event scripts and hom orders all identical.
    let arch = ArchConfig::f1_default();
    for (a, b) in
        f1::workloads::all_benchmarks(16).into_iter().zip(f1::workloads::all_benchmarks(16))
    {
        let (ex1, plan1, cs1) = f1::compiler_compile(&a.program, &arch);
        let (ex2, plan2, cs2) = f1::compiler_compile(&b.program, &arch);
        assert_eq!(ex1.hom_order, ex2.hom_order, "{}: hom-op order differs", a.name);
        assert_eq!(
            format!("{:?}", plan1.events),
            format!("{:?}", plan2.events),
            "{}: residency event scripts differ",
            a.name
        );
        assert_eq!(cs1.makespan, cs2.makespan, "{}: makespan wobble", a.name);
        assert_eq!(fingerprint(&cs1), fingerprint(&cs2), "{}: stream bytes differ", a.name);
    }
}

#[test]
fn ir_optimize_lower_is_deterministic() {
    // The frontend half of the pipeline: optimize + lower twice, same
    // DSL program out (ids included).
    let build = || lola_mnist_uw(8).fhe;
    let (o1, s1) = build().optimize();
    let (o2, s2) = build().optimize();
    assert_eq!(format!("{o1:?}"), format!("{o2:?}"));
    assert_eq!(format!("{s1:?}"), format!("{s2:?}"));
    assert_eq!(
        format!("{:?}", o1.lower().program.ops()),
        format!("{:?}", o2.lower().program.ops())
    );
}
