//! Rolled-vs-unrolled equivalence: `compile_rolled` (which proves an
//! iteration window periodic and stamps the remaining trips when it
//! can) must be invisible in the output — against the flat pipeline's
//! compile of the same program, the makespan delta must be exactly 0
//! and the FNV fingerprints of the emitted `StaticSchedule` streams
//! must be byte-identical, whether the stamping fast path engaged or
//! the compile fell back flat.

use f1::arch::ArchConfig;
use f1::compiler::ir::{FheProgram, Scheme};
use f1::compiler::{compile_fhe, compile_rolled, CycleSchedule, RolledOutcome};
use proptest::prelude::*;

/// FNV-1a over the schedule's stream debug rendering — the repo's
/// fingerprint idiom.
fn fnv_fingerprint(cs: &CycleSchedule) -> u64 {
    let s = format!("{:?}", cs.schedule);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Random single-carry loop at a fixed level: each opcode byte appends
/// one level-preserving node reading earlier body values (so iterations
/// are structurally uniform — the shape the stamping engine targets),
/// and the last body node carries back to the loop input.
fn rolled_program(ops: &[u8], trips: u32) -> FheProgram {
    let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
    let acc = p.input(6);
    let t = p.begin_repeat();
    let mut vals = vec![acc];
    for &op in ops {
        let a = vals[(op as usize / 8) % vals.len()];
        let b = vals[(op as usize / 64) % vals.len()];
        let v = match op % 4 {
            0 => p.square(a),
            1 => p.aut(a, [3, 5, 9][(op as usize / 4) % 3]),
            2 => p.add(a, b),
            _ => p.mul(a, b),
        };
        vals.push(v);
    }
    let last = *vals.last().expect("body is non-empty");
    p.end_repeat(t, trips, vec![(acc, last)], vec![]);
    p.output(last);
    p
}

fn assert_equivalent(p: &FheProgram, what: &str) {
    let arch = ArchConfig::f1_default();
    let rolled = compile_rolled(p, &arch);
    let (_, _, _, _, flat) = compile_fhe(p, &arch);
    let path = match &rolled.outcome {
        RolledOutcome::Stamped(_) => "stamped",
        RolledOutcome::Flat { .. } => "flat",
    };
    assert_eq!(
        rolled.schedule.makespan, flat.makespan,
        "{path} path, {what}: makespan delta must be exactly 0"
    );
    assert_eq!(
        fnv_fingerprint(&rolled.schedule),
        fnv_fingerprint(&flat),
        "{path} path, {what}: StaticSchedule stream fingerprints differ"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn rolled_compile_matches_unrolled_compile(
        ops in proptest::collection::vec(0u8..=255, 1..6),
        // Low draws land in 4..12 trips (flat fallback), high draws in
        // 26..40 (stamping fast path); both must agree with the flat
        // pipeline.
        raw_trips in 0u32..22,
    ) {
        let trips = if raw_trips < 8 { 4 + raw_trips } else { 26 + (raw_trips - 8) };
        assert_equivalent(&rolled_program(&ops, trips), &format!("{trips} trips, ops {ops:?}"));
    }
}

#[test]
fn canonical_chain_takes_the_stamped_path_and_matches() {
    // A known-periodic body must actually engage the fast path (the
    // proptest above would silently pass if everything fell back flat).
    let arch = ArchConfig::f1_default();
    let mut p = FheProgram::new(1 << 10, Scheme::Bgv);
    let acc = p.input(6);
    let t = p.begin_repeat();
    let m = p.square(acc);
    let r = p.aut(m, 9);
    let acc2 = p.add(r, m);
    p.end_repeat(t, 30, vec![(acc, acc2)], vec![]);
    p.output(acc2);
    let rolled = compile_rolled(&p, &arch);
    assert!(
        matches!(rolled.outcome, RolledOutcome::Stamped(_)),
        "expected the stamped path: {:?}",
        match &rolled.outcome {
            RolledOutcome::Flat { reason } => reason.clone(),
            _ => String::new(),
        }
    );
    assert_equivalent(&p, "canonical square/rotate/add chain at 30 trips");
}
